// Deterministic parallel execution engine.
//
// The paper's corpus is 675 VPs x 10,272 rounds x 26 addresses — far beyond
// what a single thread covers in reasonable wall time. This engine fans work
// units out over a fixed-size worker pool while keeping every output a pure
// function of (seed, config), independent of thread count and scheduling:
//
//   * callers draw per-unit RNGs by forking the campaign seed by unit name,
//     never by sharing a sequential stream across units;
//   * results are slot-addressed (unit i writes output[i]);
//   * observability is sharded per *unit* (ObsShards) and absorbed into the
//     main recorder in unit order after the region, which reproduces the
//     exact counter totals, histogram buckets, trace ids and ring-drop
//     behaviour of a single-threaded run — exports stay byte-identical no
//     matter which worker ran which unit, or in what order.
//
// Scheduling (which worker runs which unit, when) is therefore free to be
// dynamic. The default scheduler is deterministic work stealing: each worker
// owns a contiguous range of units packed into one 64-bit atomic; owners pop
// units from the front, idle workers steal the tail half of the richest
// victim's remaining range. Long-pole units no longer strand the rest of a
// static shard behind them (see DESIGN.md §9 for the determinism argument).
// ROOTSIM_SCHED=static restores the old static contiguous partition for A/B
// comparison; outputs are byte-identical either way.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "obs/obs.h"

namespace rootsim::exec {

class Profiler;

/// Effective worker count: `requested` if nonzero, else the ROOTSIM_WORKERS
/// environment variable, else 1. Never returns 0.
size_t resolve_workers(size_t requested = 0);

/// How parallel_for hands units to workers. Outputs never depend on the
/// choice — only wall-clock behaviour does.
enum class SchedulerMode {
  Static,     ///< contiguous blocks, worker w owns [w*chunk, (w+1)*chunk)
  WorkSteal,  ///< same initial blocks; idle workers steal tail halves
};

std::string_view to_string(SchedulerMode mode);

/// Scheduler from the ROOTSIM_SCHED environment variable: "static" selects
/// SchedulerMode::Static, anything else (or unset) the default WorkSteal.
SchedulerMode resolve_scheduler();

/// Runs `fn(unit, worker)` for every unit in [0, unit_count) on `workers`
/// threads under `resolve_scheduler()`. With workers == 1 the loop runs
/// inline on the calling thread (same code path, no pool, no atomics), so
/// serial and parallel runs differ only in interleaving — never in results.
/// The second argument to `fn` is the *worker* index (which thread is
/// calling), not a partition: under work stealing any worker may run any
/// unit, so per-worker state (probers, scratch) is keyed by it while
/// per-unit state (RNG forks, output slots, obs shards) is keyed by `unit`.
void parallel_for(size_t unit_count, size_t workers,
                  const std::function<void(size_t unit, size_t worker)>& fn);

/// Same with an explicit scheduler (tests and A/B benches).
void parallel_for(size_t unit_count, size_t workers, SchedulerMode mode,
                  const std::function<void(size_t unit, size_t worker)>& fn);

/// Same, recording every unit's wall span, per-worker steal counts and the
/// scheduler mode into `profiler` (see profiler.h). nullptr profiler takes
/// exactly the plain overload's path — profiling only ever changes what is
/// *measured*, never what runs, so deterministic outputs are identical with
/// it on or off.
void parallel_for(size_t unit_count, size_t workers, Profiler* profiler,
                  const std::function<void(size_t unit, size_t worker)>& fn);

/// Per-unit observability shards with deterministic merge.
///
/// Each unit records into its own Recorder; merge() absorbs them into the
/// main sinks in unit order. Shard tracers get the main tracer's capacity:
/// the concatenation of per-unit event streams in unit order *is* the serial
/// event stream, so the merged ring's content, id sequence and drop count
/// are byte-identical to a serial run (see Tracer::absorb) — regardless of
/// which worker ran which unit or in what order the scheduler interleaved
/// them. On a null main sink every shard is the null sink too and merge()
/// is a no-op.
class ObsShards {
 public:
  /// One shard per unit: pass the region's unit count.
  ObsShards(obs::Obs main, size_t shard_count);

  /// The Obs handle unit `index`'s work records into.
  obs::Obs shard(size_t index);

  /// Absorbs all shards into the main sinks, in unit order. Call exactly
  /// once, after the parallel region.
  void merge();

 private:
  obs::Obs main_;
  std::vector<std::unique_ptr<obs::Recorder>> shards_;
};

}  // namespace rootsim::exec
