// Deterministic parallel execution engine.
//
// The paper's corpus is 675 VPs x 10,272 rounds x 26 addresses — far beyond
// what a single thread covers in reasonable wall time. This engine fans work
// units out over a fixed-size worker pool while keeping every output a pure
// function of (seed, config), independent of thread count and scheduling:
//
//   * static contiguous sharding: worker w owns units [w*chunk, (w+1)*chunk),
//     so "merge shards in order" equals "merge units in order";
//   * callers draw per-unit RNGs by forking the campaign seed by unit name,
//     never by sharing a sequential stream across units;
//   * results are slot-addressed (unit i writes output[i]);
//   * observability is sharded per worker (ObsShards) and absorbed into the
//     main recorder in shard order after the region, which reproduces the
//     exact counter totals, histogram buckets, trace ids and ring-drop
//     behaviour of a single-threaded run — exports stay byte-identical.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "obs/obs.h"

namespace rootsim::exec {

class Profiler;

/// Effective worker count: `requested` if nonzero, else the ROOTSIM_WORKERS
/// environment variable, else 1. Never returns 0.
size_t resolve_workers(size_t requested = 0);

/// Runs `fn(unit, shard)` for every unit in [0, unit_count). Units are
/// statically partitioned into `workers` contiguous blocks; block w runs on
/// its own thread and passes shard index w. With workers == 1 the loop runs
/// inline on the calling thread (same code path, no pool), so serial and
/// parallel runs differ only in interleaving — never in results.
void parallel_for(size_t unit_count, size_t workers,
                  const std::function<void(size_t unit, size_t shard)>& fn);

/// Same, recording every unit's wall span into `profiler` (see profiler.h).
/// nullptr profiler takes exactly the plain overload's path — profiling only
/// ever changes what is *measured*, never what runs, so deterministic outputs
/// are identical with it on or off.
void parallel_for(size_t unit_count, size_t workers, Profiler* profiler,
                  const std::function<void(size_t unit, size_t shard)>& fn);

/// Per-worker observability shards with deterministic merge.
///
/// Each worker records into its own Recorder; merge() absorbs them into the
/// main sinks in shard order. Shard tracers get the main tracer's capacity:
/// combined with contiguous sharding this makes the merged ring's content,
/// id sequence and drop count byte-identical to a serial run (see
/// Tracer::absorb). On a null main sink every shard is the null sink too and
/// merge() is a no-op.
class ObsShards {
 public:
  ObsShards(obs::Obs main, size_t shard_count);

  /// The Obs handle worker `shard` records into.
  obs::Obs shard(size_t index);

  /// Absorbs all shards into the main sinks, in shard order. Call exactly
  /// once, after the parallel region.
  void merge();

 private:
  obs::Obs main_;
  std::vector<std::unique_ptr<obs::Recorder>> shards_;
};

}  // namespace rootsim::exec
