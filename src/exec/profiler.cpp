#include "exec/profiler.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "util/strings.h"

namespace rootsim::exec {

bool Profiler::enabled_by_env() {
  const char* env = std::getenv("ROOTSIM_PROFILE");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

std::string Profiler::env_output_path() {
  const char* env = std::getenv("ROOTSIM_PROFILE");
  if (env == nullptr || env[0] == '\0' || std::strcmp(env, "0") == 0 ||
      std::strcmp(env, "1") == 0)
    return "PROF_exec_audit.json";
  return env;
}

void Profiler::begin_region(size_t unit_count, size_t workers) {
  workers_ = std::max<size_t>(workers, 1);
  units_.assign(unit_count, UnitSpan{});
  steals_.assign(workers_, 0);
  sched_ = "static";
  region_begin_ms_ = now_ms();
  region_end_ms_ = region_begin_ms_;
}

void Profiler::set_scheduler(std::string_view sched) {
  sched_.assign(sched);
}

void Profiler::note_steals(size_t worker, uint64_t count) {
  if (worker < steals_.size()) steals_[worker] = count;
}

void Profiler::unit_done(size_t unit, size_t shard, double begin_ms,
                         double end_ms) {
  if (unit >= units_.size()) return;
  UnitSpan& span = units_[unit];
  span.shard = static_cast<uint32_t>(shard);
  span.recorded = true;
  span.begin_ms = begin_ms;
  span.end_ms = end_ms;
}

void Profiler::add_unit_sim_ms(size_t unit, double sim_ms) {
  if (unit >= units_.size()) return;
  units_[unit].sim_ms += sim_ms;
}

void Profiler::end_region() { region_end_ms_ = now_ms(); }

std::vector<Profiler::WorkerReport> Profiler::worker_reports() const {
  std::vector<WorkerReport> reports(workers_);
  for (size_t w = 0; w < workers_; ++w) reports[w].worker = w;
  for (const UnitSpan& span : units_) {
    if (!span.recorded || span.shard >= reports.size()) continue;
    WorkerReport& report = reports[span.shard];
    if (report.units == 0 || span.begin_ms < report.first_begin_ms)
      report.first_begin_ms = span.begin_ms;
    report.last_end_ms = std::max(report.last_end_ms, span.end_ms);
    report.busy_ms += span.end_ms - span.begin_ms;
    report.sim_ms += span.sim_ms;
    ++report.units;
  }
  const double wall = wall_ms();
  for (WorkerReport& report : reports) {
    report.utilization = wall > 0 ? report.busy_ms / wall : 0;
    report.idle_ms = std::max(0.0, wall - report.busy_ms);
    if (report.worker < steals_.size())
      report.steal_count = steals_[report.worker];
  }
  return reports;
}

std::string Profiler::to_json() const {
  const auto reports = worker_reports();
  double total_busy = 0, critical_path = 0, last_end = 0;
  size_t recorded = 0;
  for (const WorkerReport& report : reports) {
    total_busy += report.busy_ms;
    critical_path = std::max(critical_path, report.busy_ms);
    last_end = std::max(last_end, report.last_end_ms);
    recorded += report.units;
  }
  const double wall = wall_ms();
  const double mean_busy =
      workers_ > 0 ? total_busy / static_cast<double>(workers_) : 0;
  // The idle tail after the last unit completes: join + shard merge, work no
  // unit span accounts for.
  const double tail_ms =
      recorded > 0 ? std::max(0.0, region_end_ms_ - last_end) : 0;
  std::string out = "{\"schema\":\"rootsim-exec-profile/2\",\"summary\":{";
  out += util::format(
      "\"workers\":%zu,\"units\":%zu,\"wall_ms\":%.3f,\"total_busy_ms\":%.3f",
      workers_, recorded, wall, total_busy);
  out += util::format(
      ",\"critical_path_ms\":%.3f,\"parallel_efficiency\":%.4f,"
      "\"imbalance\":%.4f",
      critical_path,
      wall > 0 && workers_ > 0
          ? total_busy / (wall * static_cast<double>(workers_))
          : 0,
      mean_busy > 0 ? critical_path / mean_busy : 0);
  out += util::format(
      ",\"tail_ms\":%.3f,\"sched\":\"%s\",\"hardware_concurrency\":%u",
      tail_ms, sched_.c_str(), std::thread::hardware_concurrency());
  out += "},\"per_worker\":[";
  for (size_t w = 0; w < reports.size(); ++w) {
    const WorkerReport& report = reports[w];
    if (w) out += ",";
    out += util::format(
        "{\"worker\":%zu,\"units\":%zu,\"busy_ms\":%.3f,"
        "\"first_begin_ms\":%.3f,\"last_end_ms\":%.3f,"
        "\"utilization\":%.4f,\"idle_ms\":%.3f,\"steal_count\":%llu,"
        "\"sim_ms\":%.3f}",
        report.worker, report.units, report.busy_ms, report.first_begin_ms,
        report.last_end_ms, report.utilization, report.idle_ms,
        static_cast<unsigned long long>(report.steal_count), report.sim_ms);
  }
  out += "],\"units\":[";
  bool first = true;
  for (size_t unit = 0; unit < units_.size(); ++unit) {
    const UnitSpan& span = units_[unit];
    if (!span.recorded) continue;
    if (!first) out += ",";
    first = false;
    out += util::format("[%zu,%u,%.3f,%.3f,%.3f]", unit, span.shard,
                        span.begin_ms, span.end_ms, span.sim_ms);
  }
  out += "]}\n";
  return out;
}

bool Profiler::write(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (!file) return false;
  const std::string body = to_json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), file) == body.size();
  return std::fclose(file) == 0 && ok;
}

}  // namespace rootsim::exec
