#include "exec/engine.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "exec/profiler.h"

namespace rootsim::exec {

size_t resolve_workers(size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("ROOTSIM_WORKERS")) {
    long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 1;
}

std::string_view to_string(SchedulerMode mode) {
  return mode == SchedulerMode::Static ? "static" : "steal";
}

SchedulerMode resolve_scheduler() {
  if (const char* env = std::getenv("ROOTSIM_SCHED"))
    if (std::strcmp(env, "static") == 0) return SchedulerMode::Static;
  return SchedulerMode::WorkSteal;
}

namespace {

// A worker's remaining range of units, packed {begin:high32, end:low32} into
// one atomic word so owner pops and thief steals are single CASes. Empty when
// begin >= end. The packing caps unit counts at 2^32 (the corpus is ~2^23);
// larger regions fall back to the static scheduler.
constexpr uint64_t pack_range(uint32_t begin, uint32_t end) {
  return (static_cast<uint64_t>(begin) << 32) | end;
}
constexpr uint32_t range_begin(uint64_t range) {
  return static_cast<uint32_t>(range >> 32);
}
constexpr uint32_t range_end(uint64_t range) {
  return static_cast<uint32_t>(range);
}
constexpr uint32_t range_size(uint64_t range) {
  return range_end(range) > range_begin(range)
             ? range_end(range) - range_begin(range)
             : 0;
}

struct alignas(64) WorkerSlot {
  std::atomic<uint64_t> range{0};
};

// ABA on these CASes is benign by construction: a slot value [b,e) always
// means "units b..e-1 are available here, and nowhere else" — ranges only
// move between slots via successful CASes, a unit is in at most one visible
// range at any instant, and the transformation a CAS applies (pop front /
// split tail) is valid against the *value* regardless of the slot's history.
// seq_cst everywhere: the scheduler does a few CASes per probe-sized unit,
// so relaxed orderings buy nothing measurable and seq_cst keeps the
// happens-before story trivial for TSan and for readers.
void run_work_steal(size_t unit_count, size_t workers,
                    const std::function<void(size_t, size_t)>& fn,
                    uint64_t* steal_counts) {
  std::vector<WorkerSlot> slots(workers);
  const size_t chunk = (unit_count + workers - 1) / workers;
  for (size_t w = 0; w < workers; ++w) {
    const size_t begin = std::min(w * chunk, unit_count);
    const size_t end = std::min(begin + chunk, unit_count);
    slots[w].range.store(pack_range(static_cast<uint32_t>(begin),
                                    static_cast<uint32_t>(end)));
  }

  auto worker_loop = [&](size_t w) {
    uint64_t steals = 0;
    for (;;) {
      // Drain the front of our own range.
      uint64_t r = slots[w].range.load();
      while (range_size(r) > 0) {
        const uint32_t unit = range_begin(r);
        if (slots[w].range.compare_exchange_weak(
                r, pack_range(unit + 1, range_end(r)))) {
          fn(unit, w);
          r = slots[w].range.load();
        }
        // CAS failure reloaded r; retry against the fresh value.
      }
      // Own range empty: steal the tail half of the richest victim.
      size_t victim = workers;
      uint64_t victim_range = 0;
      uint32_t best = 0;
      for (size_t v = 0; v < workers; ++v) {
        if (v == w) continue;
        const uint64_t vr = slots[v].range.load();
        if (range_size(vr) > best) {
          best = range_size(vr);
          victim = v;
          victim_range = vr;
        }
      }
      // Every slot empty: retire. (A thief may still hold units it stole
      // but has not yet published — those run on the thief; nothing is
      // lost, we just stop looking.)
      if (victim == workers) break;
      const uint32_t b = range_begin(victim_range);
      const uint32_t e = range_end(victim_range);
      const uint32_t take = (e - b + 1) / 2;  // >= 1; == all when one left
      const uint32_t mid = e - take;
      if (slots[victim].range.compare_exchange_strong(victim_range,
                                                      pack_range(b, mid))) {
        ++steals;
        // Our slot is empty, and no thief can CAS an empty slot (expected
        // values are always non-empty), so a plain store publishes safely.
        slots[w].range.store(pack_range(mid, e));
      }
      // CAS failure: someone raced us for this victim; rescan.
    }
    if (steal_counts) steal_counts[w] = steals;
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) pool.emplace_back(worker_loop, w);
  for (auto& t : pool) t.join();
}

void run_static(size_t unit_count, size_t workers,
                const std::function<void(size_t, size_t)>& fn) {
  const size_t chunk = (unit_count + workers - 1) / workers;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    const size_t begin = w * chunk;
    const size_t end = std::min(begin + chunk, unit_count);
    if (begin >= end) break;
    pool.emplace_back([&fn, w, begin, end] {
      for (size_t unit = begin; unit < end; ++unit) fn(unit, w);
    });
  }
  for (auto& t : pool) t.join();
}

void run_units(size_t unit_count, size_t workers, SchedulerMode mode,
               const std::function<void(size_t, size_t)>& fn,
               uint64_t* steal_counts) {
  if (unit_count == 0) return;
  if (workers == 0) workers = 1;
  if (workers > unit_count) workers = unit_count;
  if (workers == 1) {
    for (size_t unit = 0; unit < unit_count; ++unit) fn(unit, 0);
    return;
  }
  if (mode == SchedulerMode::WorkSteal &&
      unit_count <= (uint64_t{1} << 32) - 1) {
    run_work_steal(unit_count, workers, fn, steal_counts);
  } else {
    run_static(unit_count, workers, fn);
  }
}

}  // namespace

void parallel_for(size_t unit_count, size_t workers,
                  const std::function<void(size_t, size_t)>& fn) {
  run_units(unit_count, workers, resolve_scheduler(), fn, nullptr);
}

void parallel_for(size_t unit_count, size_t workers, SchedulerMode mode,
                  const std::function<void(size_t, size_t)>& fn) {
  run_units(unit_count, workers, mode, fn, nullptr);
}

void parallel_for(size_t unit_count, size_t workers, Profiler* profiler,
                  const std::function<void(size_t, size_t)>& fn) {
  if (!profiler) {
    parallel_for(unit_count, workers, fn);
    return;
  }
  const SchedulerMode mode = resolve_scheduler();
  const size_t effective =
      std::max<size_t>(1, std::min(workers ? workers : 1, unit_count));
  profiler->begin_region(unit_count, effective);
  profiler->set_scheduler(to_string(mode));
  std::vector<uint64_t> steals(effective, 0);
  run_units(
      unit_count, workers, mode,
      [&](size_t unit, size_t worker) {
        const double begin_ms = profiler->now_ms();
        fn(unit, worker);
        profiler->unit_done(unit, worker, begin_ms, profiler->now_ms());
      },
      steals.data());
  for (size_t w = 0; w < effective; ++w) profiler->note_steals(w, steals[w]);
  profiler->end_region();
}

ObsShards::ObsShards(obs::Obs main, size_t shard_count) : main_(main) {
  if (!main_.enabled()) return;
  size_t capacity = main_.tracer ? main_.tracer->capacity() : 1;
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i)
    shards_.push_back(std::make_unique<obs::Recorder>(capacity));
}

obs::Obs ObsShards::shard(size_t index) {
  if (shards_.empty()) return {};
  obs::Obs obs = shards_[index]->obs();
  // Mirror the main sink's shape: no tracer attached means the shard should
  // not pay for tracing either.
  if (!main_.tracer) obs.tracer = nullptr;
  if (!main_.metrics) obs.metrics = nullptr;
  if (!main_.rssac002) obs.rssac002 = nullptr;
  if (!main_.slo) obs.slo = nullptr;
  return obs;
}

void ObsShards::merge() {
  for (auto& shard : shards_) {
    if (main_.metrics) main_.metrics->merge_from(shard->metrics());
    if (main_.tracer) main_.tracer->absorb(std::move(shard->tracer()));
    if (main_.rssac002) main_.rssac002->merge_from(shard->rssac002());
    if (main_.slo) main_.slo->merge_from(shard->slo());
  }
  shards_.clear();
}

}  // namespace rootsim::exec
