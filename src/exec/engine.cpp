#include "exec/engine.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "exec/profiler.h"

namespace rootsim::exec {

size_t resolve_workers(size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("ROOTSIM_WORKERS")) {
    long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 1;
}

void parallel_for(size_t unit_count, size_t workers,
                  const std::function<void(size_t, size_t)>& fn) {
  if (unit_count == 0) return;
  if (workers == 0) workers = 1;
  if (workers > unit_count) workers = unit_count;
  size_t chunk = (unit_count + workers - 1) / workers;
  if (workers == 1) {
    for (size_t unit = 0; unit < unit_count; ++unit) fn(unit, 0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    size_t begin = w * chunk;
    size_t end = std::min(begin + chunk, unit_count);
    if (begin >= end) break;
    pool.emplace_back([&fn, w, begin, end] {
      for (size_t unit = begin; unit < end; ++unit) fn(unit, w);
    });
  }
  for (auto& t : pool) t.join();
}

void parallel_for(size_t unit_count, size_t workers, Profiler* profiler,
                  const std::function<void(size_t, size_t)>& fn) {
  if (!profiler) {
    parallel_for(unit_count, workers, fn);
    return;
  }
  const size_t effective =
      std::max<size_t>(1, std::min(workers ? workers : 1, unit_count));
  profiler->begin_region(unit_count, effective);
  parallel_for(unit_count, workers, [&](size_t unit, size_t shard) {
    const double begin_ms = profiler->now_ms();
    fn(unit, shard);
    profiler->unit_done(unit, shard, begin_ms, profiler->now_ms());
  });
  profiler->end_region();
}

ObsShards::ObsShards(obs::Obs main, size_t shard_count) : main_(main) {
  if (!main_.enabled()) return;
  size_t capacity = main_.tracer ? main_.tracer->capacity() : 1;
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i)
    shards_.push_back(std::make_unique<obs::Recorder>(capacity));
}

obs::Obs ObsShards::shard(size_t index) {
  if (shards_.empty()) return {};
  obs::Obs obs = shards_[index]->obs();
  // Mirror the main sink's shape: no tracer attached means the shard should
  // not pay for tracing either.
  if (!main_.tracer) obs.tracer = nullptr;
  if (!main_.metrics) obs.metrics = nullptr;
  if (!main_.rssac002) obs.rssac002 = nullptr;
  return obs;
}

void ObsShards::merge() {
  for (auto& shard : shards_) {
    if (main_.metrics) main_.metrics->merge_from(shard->metrics());
    if (main_.tracer) main_.tracer->absorb(std::move(shard->tracer()));
    if (main_.rssac002) main_.rssac002->merge_from(shard->rssac002());
  }
  shards_.clear();
}

}  // namespace rootsim::exec
