// A local root zone service (RFC 7706 / RFC 8806) with ZONEMD-verified
// refresh — the consumer the paper argues ZONEMD exists for.
//
// A resolver operator runs a local copy of the root zone to cut RTTs and
// root-server load (Allman's proposal, Kumari/Hoffman RFCs). The hazard is
// serving a wrong copy: transfers can arrive bitflipped or stale (paper
// Table 2). This component implements the paper's recommended behaviour
// ("implement appropriate fallback mechanisms such as rescheduling a zone
// transfer from a different root server"):
//
//   1. refresh by AXFR from a configurable root server order;
//   2. fully validate each candidate copy — RRSIGs against the trust
//      anchors, and the ZONEMD digest when the record is verifiable;
//   3. on validation failure, fall back to the next server (and record why);
//   4. never serve a copy that failed validation; keep the previous good
//      copy until its SOA expire time, then go degraded (upstream fallback).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dnssec/validator.h"
#include "measure/campaign.h"

namespace rootsim::localroot {

/// Why a refresh attempt against one server was rejected or accepted.
struct RefreshAttempt {
  int root_index = -1;
  util::IpFamily family = util::IpFamily::V4;
  bool old_b_address = false;
  bool transfer_failed = false;
  /// The transfer never arrived because the transport gave up (SYN loss) or
  /// the path refuses TCP — as opposed to a server-side AXFR refusal.
  bool timed_out = false;
  bool tcp_refused = false;
  dnssec::ValidationStatus dnssec_verdict = dnssec::ValidationStatus::Valid;
  dnssec::ZonemdStatus zonemd_verdict = dnssec::ZonemdStatus::NoZonemd;
  bool accepted = false;
  std::string detail;
  /// Wire-level accounting of the probe that carried this attempt.
  netsim::TransportStats transport;
};

struct RefreshResult {
  bool success = false;
  uint32_t serial = 0;
  std::vector<RefreshAttempt> attempts;
};

struct LocalRootConfig {
  /// Server preference order (catalog indices 0..12).
  std::vector<int> server_order = {1, 10, 5, 3, 0, 2, 4, 6, 7, 8, 9, 11, 12};
  util::IpFamily preferred_family = util::IpFamily::V6;
  /// Require a verifiable ZONEMD once the rollout provides one; before that,
  /// DNSSEC-only validation is accepted (the pre-2023-12-06 reality).
  bool require_zonemd_when_available = true;
  /// Maximum servers tried per refresh before giving up.
  size_t max_attempts = 5;
  /// If set, trust is bootstrapped per transfer from this DS record (the
  /// IANA-trust-anchor path): the received DNSKEY RRset must contain a KSK
  /// matching the DS and vouching for the key set. If unset, the campaign
  /// authority's keys are trusted directly (test convenience).
  std::optional<dns::DsData> ds_anchor;
};

/// The local root service.
class LocalRootService {
 public:
  LocalRootService(const measure::Campaign& campaign,
                   const measure::VantagePoint& vp, LocalRootConfig config = {});

  /// Attempts a refresh at time `now`. Fault knobs let tests/examples make
  /// specific servers serve stale or corrupted copies.
  struct ServerFault {
    int root_index = -1;
    measure::Prober::FaultKnobs knobs;
  };
  RefreshResult refresh(util::UnixTime now,
                        const std::vector<ServerFault>& faults = {});

  /// True if a validated copy is loaded and not expired at `now`.
  bool can_serve(util::UnixTime now) const;

  /// Answers a query from the local copy; nullopt when degraded (caller
  /// should fall back to upstream resolution — RFC 8806 §3).
  std::optional<dns::Message> resolve(const dns::Message& query,
                                      util::UnixTime now) const;

  const std::optional<dns::Zone>& zone() const { return zone_; }
  uint32_t serial() const { return zone_ ? zone_->serial() : 0; }
  util::UnixTime loaded_at() const { return loaded_at_; }

 private:
  const measure::Campaign* campaign_;
  measure::VantagePoint vp_;
  LocalRootConfig config_;
  std::optional<dns::Zone> zone_;
  util::UnixTime loaded_at_ = 0;
};

}  // namespace rootsim::localroot
