#include "localroot/local_root.h"

#include "rss/server.h"
#include "util/strings.h"

namespace rootsim::localroot {

LocalRootService::LocalRootService(const measure::Campaign& campaign,
                                   const measure::VantagePoint& vp,
                                   LocalRootConfig config)
    : campaign_(&campaign), vp_(vp), config_(std::move(config)) {}

RefreshResult LocalRootService::refresh(util::UnixTime now,
                                        const std::vector<ServerFault>& faults) {
  RefreshResult result;
  dnssec::TrustAnchors anchors = campaign_->authority().trust_anchors();
  uint64_t round = campaign_->schedule().round_at(now);

  size_t attempts = 0;
  for (int root_index : config_.server_order) {
    if (attempts >= config_.max_attempts) break;
    ++attempts;
    RefreshAttempt attempt;
    attempt.root_index = root_index;
    attempt.family = config_.preferred_family;
    const auto& server = campaign_->catalog().server(static_cast<size_t>(root_index));
    util::IpAddress address = config_.preferred_family == util::IpFamily::V4
                                  ? server.ipv4
                                  : server.ipv6;
    measure::Prober::FaultKnobs knobs;
    for (const ServerFault& fault : faults)
      if (fault.root_index == root_index) knobs = fault.knobs;

    measure::ProbeRecord probe =
        campaign_->prober().probe(vp_, address, now, round, knobs);
    attempt.transport = probe.transport;
    if (!probe.axfr || probe.axfr->refused) {
      attempt.transfer_failed = true;
      attempt.timed_out = probe.axfr && probe.axfr->timed_out;
      attempt.tcp_refused = probe.axfr && probe.axfr->tcp_refused;
      attempt.detail = attempt.timed_out    ? "transfer timed out"
                       : attempt.tcp_refused ? "path refuses TCP"
                                             : "transfer failed/refused";
      result.attempts.push_back(attempt);
      continue;
    }
    auto candidate = dns::Zone::from_axfr(probe.axfr->records, dns::Name());
    if (!candidate) {
      attempt.transfer_failed = true;
      attempt.detail = "AXFR framing broken";
      result.attempts.push_back(attempt);
      continue;
    }
    // With a configured DS anchor, bootstrap trust from the received copy
    // itself (the IANA trust-anchor path); a failed bootstrap rejects the
    // transfer outright.
    dnssec::TrustAnchors effective_anchors = anchors;
    if (config_.ds_anchor) {
      effective_anchors = dnssec::TrustAnchors::from_ds_anchor(
          *config_.ds_anchor, *candidate, vp_.local_clock(now));
      if (effective_anchors.keys.empty()) {
        attempt.dnssec_verdict = dnssec::ValidationStatus::UnknownKey;
        attempt.detail =
            "DS anchor bootstrap failed -> rescheduling from next server";
        result.attempts.push_back(attempt);
        continue;
      }
    }
    auto validation = dnssec::validate_zone(*candidate, effective_anchors,
                                            vp_.local_clock(now));
    attempt.dnssec_verdict = validation.dominant_failure();
    attempt.zonemd_verdict = validation.zonemd;

    bool dnssec_ok = validation.signature_failures.empty();
    bool zonemd_ok = true;
    if (config_.require_zonemd_when_available) {
      // Reject a verifiable-but-wrong or wrong-serial digest outright; a
      // missing or unsupported record is acceptable (pre-rollout reality).
      zonemd_ok = validation.zonemd == dnssec::ZonemdStatus::Verified ||
                  validation.zonemd == dnssec::ZonemdStatus::NoZonemd ||
                  validation.zonemd == dnssec::ZonemdStatus::UnsupportedScheme;
    }
    if (dnssec_ok && zonemd_ok) {
      attempt.accepted = true;
      attempt.detail = util::format("accepted serial %u from %c.root",
                                    candidate->serial(), 'a' + root_index);
      result.attempts.push_back(attempt);
      zone_ = std::move(*candidate);
      loaded_at_ = now;
      result.success = true;
      result.serial = zone_->serial();
      return result;
    }
    attempt.detail = util::format(
        "rejected: dnssec=%s zonemd=%s -> rescheduling from next server",
        to_string(attempt.dnssec_verdict).c_str(),
        to_string(attempt.zonemd_verdict).c_str());
    result.attempts.push_back(attempt);
  }
  return result;
}

bool LocalRootService::can_serve(util::UnixTime now) const {
  if (!zone_) return false;
  auto soa = zone_->soa();
  if (!soa) return false;
  // RFC 1035 expire semantics: the copy is unusable this long after load.
  return now - loaded_at_ <= static_cast<int64_t>(soa->expire);
}

std::optional<dns::Message> LocalRootService::resolve(const dns::Message& query,
                                                      util::UnixTime now) const {
  if (!can_serve(now)) return std::nullopt;  // degraded: use upstream
  if (query.questions.empty()) return std::nullopt;
  // Answer from the *validated local copy* through the same engine the real
  // root instances use (RFC 8806: the local service is indistinguishable
  // from a root server for root-zone queries).
  dns::Message response =
      rss::answer_from_zone(*zone_, query, query.questions.front());
  response.ra = true;  // we are the resolver-side service
  return response;
}

}  // namespace rootsim::localroot
