#include "measure/campaign.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "exec/engine.h"
#include "exec/profiler.h"
#include "util/rng.h"
#include "util/strings.h"

namespace rootsim::measure {

namespace {

const char* fault_kind_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::ClockSkew: return "clock-skew";
    case FaultEvent::Kind::Bitflip: return "bitflip";
    case FaultEvent::Kind::StaleServer: return "stale-server";
  }
  return "?";
}

// Wall-clock phase timing feeds a *volatile* gauge: excluded from the
// deterministic exports, visible when a report is captured with
// include_volatile = true.
using WallClock = std::chrono::steady_clock;

void record_phase_wall(obs::Obs obs, const char* phase,
                       WallClock::time_point start) {
  if (!obs.metrics) return;
  double ms =
      std::chrono::duration<double, std::milli>(WallClock::now() - start).count();
  obs.metrics
      ->gauge("campaign.phase_wall_ms", {{"phase", phase}},
              /*volatile_metric=*/true)
      .add(ms);
}

// Shrinks the VP set proportionally per region (for fast unit tests).
std::vector<VantagePoint> scale_vps(std::vector<VantagePoint> vps, double scale) {
  if (scale >= 1.0) return vps;
  std::vector<VantagePoint> kept;
  std::array<int, util::kRegionCount> seen{}, budget{};
  for (const RegionQuota& quota : table3_quotas())
    budget[static_cast<size_t>(quota.region)] = std::max(
        1, static_cast<int>(quota.vantage_points * scale));
  for (auto& vp : vps) {
    size_t region = static_cast<size_t>(vp.view.region);
    if (seen[region] < budget[region]) {
      ++seen[region];
      kept.push_back(std::move(vp));
    }
  }
  return kept;
}

}  // namespace

Campaign::Campaign(CampaignConfig config, obs::Obs obs)
    : config_(std::move(config)), obs_(obs), schedule_(config_.schedule) {
  config_.topology.seed = config_.seed;
  config_.router.seed = config_.seed;
  config_.vantage.seed = config_.seed;
  config_.zone.seed = config_.seed;
  config_.transport.seed = config_.seed;
  config_.router.campaign_rounds = schedule_.round_count();
  if (config_.router.churn == std::array<netsim::ChurnSpec, 13>{})
    config_.router.churn = netsim::default_churn_specs();

  // The catalog's renumbering instant is scenario data: the zone authority
  // flips b's records and the priming hints cross over at the same time.
  catalog_.set_renumbering_time(config_.zone.broot_change);

  authority_ = std::make_unique<rss::ZoneAuthority>(catalog_, config_.zone, obs_);
  std::vector<netsim::DeploymentSpec> deployments =
      catalog_.all_deployment_specs();
  for (const auto& override_spec : config_.deployment_overrides) {
    if (override_spec.root_index < 0 ||
        static_cast<size_t>(override_spec.root_index) >= deployments.size())
      continue;
    auto& spec = deployments[static_cast<size_t>(override_spec.root_index)];
    spec.global_sites = override_spec.global_sites;
    spec.local_sites = override_spec.local_sites;
  }
  topology_ = netsim::build_topology(config_.topology, deployments,
                                     rss::paper_detour_rules());
  router_ = std::make_unique<netsim::AnycastRouter>(topology_, config_.router,
                                                    obs_);
  vps_ = scale_vps(generate_vantage_points(topology_, config_.vantage),
                   config_.vp_scale);
  prober_ = std::make_unique<Prober>(*authority_, catalog_, *router_,
                                     config_.transport, obs_);
  faults_ = config_.fault_plan;
  if (obs_.metrics) {
    obs_.metrics->gauge("campaign.vantage_points").set(
        static_cast<double>(vps_.size()));
    obs_.metrics->gauge("campaign.rounds").set(
        static_cast<double>(schedule_.round_count()));
  }
}

std::vector<ZoneAuditObservation> Campaign::run_zone_audit(
    size_t clean_samples, size_t workers) const {
  return run_zone_audit_with(faults_, clean_samples, workers);
}

std::vector<ZoneAuditObservation> Campaign::run_zone_audit_with(
    const std::vector<FaultEvent>& faults, size_t clean_samples,
    size_t workers) const {
  dnssec::TrustAnchors anchors = authority_->trust_anchors();
  const util::Rng audit_rng = util::Rng(config_.seed).fork("zone-audit");

  // Stable vp_id -> index lookup. The fault plan names full-campaign VP ids;
  // a scaled-down VP set (vp_scale < 1) may not contain them, in which case
  // each missing planned id gets its own stand-in VP. The assignment is
  // hash-seeded with linear probing over a taken map, so — unlike the modulo
  // aliasing it replaces — two distinct planned ids never collapse onto the
  // same stand-in (as long as the scaled set has enough VPs), and it only
  // depends on (fault plan, VP set), never on scheduling.
  std::unordered_map<uint32_t, size_t> vp_index;
  vp_index.reserve(vps_.size());
  for (size_t i = 0; i < vps_.size(); ++i) vp_index.emplace(vps_[i].view.vp_id, i);
  std::unordered_map<uint32_t, size_t> fallback_base;
  {
    std::vector<uint32_t> missing;
    for (const FaultEvent& event : faults_)
      if (!vp_index.count(event.vp_id)) missing.push_back(event.vp_id);
    std::sort(missing.begin(), missing.end());
    missing.erase(std::unique(missing.begin(), missing.end()), missing.end());
    std::vector<bool> taken(vps_.size(), false);
    size_t assigned = 0;
    for (uint32_t vp_id : missing) {
      if (assigned == vps_.size()) {
        // More missing ids than VPs: reuse is unavoidable; start over.
        taken.assign(vps_.size(), false);
        assigned = 0;
      }
      uint64_t mix = vp_id;
      size_t slot = util::splitmix64(mix) % vps_.size();
      while (taken[slot]) slot = (slot + 1) % vps_.size();
      taken[slot] = true;
      ++assigned;
      fallback_base.emplace(vp_id, slot);
    }
  }
  auto vp_by_id = [&](uint32_t vp_id, bool& fallback) -> const VantagePoint& {
    auto it = vp_index.find(vp_id);
    fallback = it == vp_index.end();
    return fallback ? vps_[fallback_base.at(vp_id)] : vps_[it->second];
  };

  auto validate_probe = [&](const ProbeRecord& probe, const FaultEvent* fault,
                            const obs::Obs& sink) -> ZoneAuditObservation {
    ZoneAuditObservation obs;
    obs.vp_id = probe.vp_id;
    obs.table2_vp_id = fault ? fault->table2_vp_id : 0;
    obs.root_index = probe.root_index;
    obs.family = probe.family;
    obs.old_b_address = probe.old_b_address;
    obs.when = probe.true_time;
    // Nests the verdict under the probe span that transferred the zone.
    auto trace_verdict = [&](const ZoneAuditObservation& verdict) {
      if (!sink.tracer) return;
      std::vector<obs::TraceAttr> attrs{
          {"verdict", dnssec::to_string(verdict.verdict)},
          {"zonemd", dnssec::to_string(verdict.zonemd)}};
      if (!verdict.note.empty()) attrs.push_back({"note", verdict.note});
      sink.tracer->event(probe.trace_span, "validate", probe.true_time,
                         std::move(attrs));
    };
    if (!probe.axfr || probe.axfr->refused) {
      // A transfer that never arrived: refused by the server, or — on lossy
      // / TCP-refusing transport conditions — never established at all.
      obs.note = probe.axfr && probe.axfr->timed_out ? "axfr-timeout"
                                                     : "axfr-refused";
      trace_verdict(obs);
      return obs;
    }
    obs.soa_serial = probe.axfr->soa_serial;
    auto zone = dns::Zone::from_axfr(probe.axfr->records, dns::Name());
    if (!zone) {
      // Corruption broke the framing itself (possible if the SOA owner name
      // got hit); report as bogus.
      obs.verdict = dnssec::ValidationStatus::BogusSignature;
      obs.note = "axfr-framing-broken: " + probe.axfr->bitflip_note;
      trace_verdict(obs);
      return obs;
    }
    // Validation uses the VP's own clock — exactly how skew turns into
    // "signature not incepted" verdicts.
    auto result = dnssec::validate_zone(*zone, anchors, probe.vp_time, sink);
    obs.verdict = result.dominant_failure();
    obs.zonemd = result.zonemd;
    if (probe.axfr->bitflip_injected) obs.note = probe.axfr->bitflip_note;
    trace_verdict(obs);
    return obs;
  };

  // One work unit per fault event plus one per clean sample. Units are
  // slot-addressed and seeded by index, so the observation vector is the
  // same for every worker count; per-unit obs shards merged in unit order
  // keep the metric/trace exports byte-identical too — no matter which
  // worker the scheduler hands a unit to, or in what order.
  const size_t fault_count = faults_.size();
  const size_t total_units = fault_count + clean_samples;
  workers = std::max<size_t>(1, std::min(exec::resolve_workers(workers),
                                         std::max<size_t>(total_units, 1)));
  exec::ObsShards shards(obs_, total_units);
  // Each worker owns one Prober (and its Transport); the unit body rebinds
  // it to the current unit's obs shard before probing. An attached flight
  // recorder gets one lock-free shard per worker so recording stays off the
  // parallel hot path (its ring is diagnostic, merged at read time).
  std::vector<netsim::FlightRecorder::Shard*> flight_shards;
  if (config_.transport.flight_recorder && workers > 1)
    flight_shards = config_.transport.flight_recorder->make_shards(workers);
  std::vector<std::unique_ptr<Prober>> probers;
  probers.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    netsim::TransportConfig transport_config = config_.transport;
    if (!flight_shards.empty()) transport_config.flight_shard = flight_shards[w];
    probers.push_back(std::make_unique<Prober>(*authority_, catalog_, *router_,
                                               std::move(transport_config),
                                               obs::Obs{}));
  }
  std::vector<ZoneAuditObservation> observations(total_units);
  // Hoisted out of the sampling loop: the address set is time-invariant for
  // the fixed `end` snapshot and each unit needs only a reference.
  const auto addresses = catalog_.service_addresses(schedule_.config().end);
  const auto& renumbering = catalog_.renumbering();

  // ROOTSIM_PROFILE turns on the exec-pool profiler: per-unit wall spans and
  // the worker imbalance report land in PROF_exec_audit.json (or the knob's
  // value as a path). Profiling never touches the deterministic outputs —
  // nullptr takes the exact unprofiled path.
  exec::Profiler profiler;
  exec::Profiler* prof =
      exec::Profiler::enabled_by_env() ? &profiler : nullptr;

  WallClock::time_point phase_start = WallClock::now();
  exec::parallel_for(total_units, workers, prof,
                     [&](size_t unit, size_t worker) {
    obs::Obs sink = shards.shard(unit);
    Prober& prober = *probers[worker];
    prober.rebind_obs(sink);
    if (unit < fault_count) {
      // Planned fault event: full-fidelity probe with the fault knobs set.
      const FaultEvent& event = faults_[unit];
      if (sink.metrics)
        sink.count("campaign.fault_events",
                   {{"kind", fault_kind_name(event.kind)}});
      util::IpAddress address;
      const bool all_servers = event.root_index < 0;
      if (all_servers) {
        // "all servers": the VP's whole round is affected (clock skew). One
        // representative transfer per event stands for the round; Table 2
        // counts zone files, not addresses.
        address = catalog_.server(10).ipv4;  // k.root
      } else if (event.old_b_address) {
        address = event.family == util::IpFamily::V4 ? renumbering.old_ipv4
                                                     : renumbering.old_ipv6;
      } else {
        const auto& server =
            catalog_.server(static_cast<size_t>(event.root_index));
        address = event.family == util::IpFamily::V4 ? server.ipv4
                                                     : server.ipv6;
      }
      bool vp_fallback = false;
      VantagePoint vp = vp_by_id(event.vp_id, vp_fallback);
      uint32_t stand_in_vp_id = vp.view.vp_id;
      vp.view.vp_id = event.vp_id;  // keep the plan's VP identity
      if (event.kind == FaultEvent::Kind::ClockSkew)
        vp.clock_offset_s = event.clock_offset_s;
      Prober::FaultKnobs knobs;
      if (event.kind == FaultEvent::Kind::Bitflip) {
        knobs.inject_bitflip = true;
        // Seeded by unit index, not by a shared sequential stream: every
        // unit's draw is independent of scheduling.
        knobs.bitflip_seed =
            audit_rng.fork(util::format("bitflip-%zu", unit)).next();
        knobs.bitflip_prefer_signed = true;  // the detected subset, as in §7
      }
      if (event.kind == FaultEvent::Kind::StaleServer)
        knobs.server_frozen_at = event.server_frozen_at;
      ProbeRecord probe = prober.probe(vp, address, event.when,
                                       schedule_.round_at(event.when), knobs);
      if (prof) prof->add_unit_sim_ms(unit, probe.transport.time_ms);
      ZoneAuditObservation obs = validate_probe(probe, &event, sink);
      obs.affects_all_servers = all_servers;
      if (vp_fallback && obs.note != "axfr-refused" &&
          obs.note != "axfr-timeout" &&
          !util::starts_with(obs.note, "axfr-framing-broken")) {
        // Annotate the aliasing so Table 2 rows from scaled-down test
        // configs are recognizably approximate. Skip the note on the
        // refused/broken classes: downstream reconciliation matches those
        // verbatim.
        if (!obs.note.empty()) obs.note += "; ";
        obs.note += util::format(
            "vp-fallback: planned vp %u not in scaled set (stand-in vp %u)",
            event.vp_id, stand_in_vp_id);
      }
      observations[unit] = std::move(obs);
    } else {
      // Clean transfer sampled across the campaign and the address set.
      const size_t sample = unit - fault_count;
      util::Rng rng = audit_rng.fork(util::format("clean-%zu", sample));
      const VantagePoint& vp = vps_[rng.uniform(vps_.size())];
      size_t round = rng.uniform(schedule_.round_count());
      const auto& address = addresses[rng.uniform(addresses.size())];
      ProbeRecord probe =
          prober.probe(vp, address, schedule_.round_time(round), round, {});
      if (prof) prof->add_unit_sim_ms(unit, probe.transport.time_ms);
      observations[unit] = validate_probe(probe, nullptr, sink);
    }
  });
  shards.merge();
  if (prof) prof->write(exec::Profiler::env_output_path());
  if (obs_.metrics) {
    obs_.count("campaign.clean_samples", clean_samples);
    // Volatile: the worker count is an execution detail, not part of the
    // deterministic export surface.
    obs_.metrics
        ->gauge("campaign.audit_workers", {}, /*volatile_metric=*/true)
        .set(static_cast<double>(workers));
  }
  record_phase_wall(obs_, "zone-audit", phase_start);

  std::stable_sort(
      observations.begin(), observations.end(),
      [](const ZoneAuditObservation& a, const ZoneAuditObservation& b) {
        return a.when < b.when;
      });
  return observations;
}

}  // namespace rootsim::measure
