#include "measure/campaign.h"

#include <algorithm>
#include <chrono>

namespace rootsim::measure {

namespace {

const char* fault_kind_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::ClockSkew: return "clock-skew";
    case FaultEvent::Kind::Bitflip: return "bitflip";
    case FaultEvent::Kind::StaleServer: return "stale-server";
  }
  return "?";
}

// Wall-clock phase timing feeds a *volatile* gauge: excluded from the
// deterministic exports, visible when a report is captured with
// include_volatile = true.
using WallClock = std::chrono::steady_clock;

void record_phase_wall(obs::Obs obs, const char* phase,
                       WallClock::time_point start) {
  if (!obs.metrics) return;
  double ms =
      std::chrono::duration<double, std::milli>(WallClock::now() - start).count();
  obs.metrics
      ->gauge("campaign.phase_wall_ms", {{"phase", phase}},
              /*volatile_metric=*/true)
      .add(ms);
}

// Shrinks the VP set proportionally per region (for fast unit tests).
std::vector<VantagePoint> scale_vps(std::vector<VantagePoint> vps, double scale) {
  if (scale >= 1.0) return vps;
  std::vector<VantagePoint> kept;
  std::array<int, util::kRegionCount> seen{}, budget{};
  for (const RegionQuota& quota : table3_quotas())
    budget[static_cast<size_t>(quota.region)] = std::max(
        1, static_cast<int>(quota.vantage_points * scale));
  for (auto& vp : vps) {
    size_t region = static_cast<size_t>(vp.view.region);
    if (seen[region] < budget[region]) {
      ++seen[region];
      kept.push_back(std::move(vp));
    }
  }
  return kept;
}

}  // namespace

Campaign::Campaign(CampaignConfig config, obs::Obs obs)
    : config_(std::move(config)), obs_(obs), schedule_(config_.schedule) {
  config_.topology.seed = config_.seed;
  config_.router.seed = config_.seed;
  config_.vantage.seed = config_.seed;
  config_.zone.seed = config_.seed;
  config_.router.campaign_rounds = schedule_.round_count();
  if (config_.router.churn == std::array<netsim::ChurnSpec, 13>{})
    config_.router.churn = netsim::default_churn_specs();

  authority_ = std::make_unique<rss::ZoneAuthority>(catalog_, config_.zone, obs_);
  topology_ = netsim::build_topology(config_.topology,
                                     catalog_.all_deployment_specs(),
                                     rss::paper_detour_rules());
  router_ = std::make_unique<netsim::AnycastRouter>(topology_, config_.router,
                                                    obs_);
  vps_ = scale_vps(generate_vantage_points(topology_, config_.vantage),
                   config_.vp_scale);
  prober_ = std::make_unique<Prober>(*authority_, catalog_, *router_, obs_);
  faults_ = default_fault_plan();
  if (obs_.metrics) {
    obs_.metrics->gauge("campaign.vantage_points").set(
        static_cast<double>(vps_.size()));
    obs_.metrics->gauge("campaign.rounds").set(
        static_cast<double>(schedule_.round_count()));
  }
}

std::vector<ZoneAuditObservation> Campaign::run_zone_audit(
    size_t clean_samples) const {
  std::vector<ZoneAuditObservation> observations;
  dnssec::TrustAnchors anchors = authority_->trust_anchors();
  util::Rng rng = util::Rng(config_.seed).fork("zone-audit");

  auto vp_by_id = [&](uint32_t vp_id) -> const VantagePoint& {
    return vps_[vp_id % vps_.size()];
  };

  auto validate_probe = [&](const ProbeRecord& probe,
                            const FaultEvent* fault) -> ZoneAuditObservation {
    ZoneAuditObservation obs;
    obs.vp_id = probe.vp_id;
    obs.table2_vp_id = fault ? fault->table2_vp_id : 0;
    obs.root_index = probe.root_index;
    obs.family = probe.family;
    obs.old_b_address = probe.old_b_address;
    obs.when = probe.true_time;
    // Nests the verdict under the probe span that transferred the zone.
    auto trace_verdict = [&](const ZoneAuditObservation& verdict) {
      if (!obs_.tracer) return;
      std::vector<obs::TraceAttr> attrs{
          {"verdict", dnssec::to_string(verdict.verdict)},
          {"zonemd", dnssec::to_string(verdict.zonemd)}};
      if (!verdict.note.empty()) attrs.push_back({"note", verdict.note});
      obs_.tracer->event(probe.trace_span, "validate", probe.true_time,
                         std::move(attrs));
    };
    if (!probe.axfr || probe.axfr->refused) {
      obs.note = "axfr-refused";
      trace_verdict(obs);
      return obs;
    }
    obs.soa_serial = probe.axfr->soa_serial;
    auto zone = dns::Zone::from_axfr(probe.axfr->records, dns::Name());
    if (!zone) {
      // Corruption broke the framing itself (possible if the SOA owner name
      // got hit); report as bogus.
      obs.verdict = dnssec::ValidationStatus::BogusSignature;
      obs.note = "axfr-framing-broken: " + probe.axfr->bitflip_note;
      trace_verdict(obs);
      return obs;
    }
    // Validation uses the VP's own clock — exactly how skew turns into
    // "signature not incepted" verdicts.
    auto result = dnssec::validate_zone(*zone, anchors, probe.vp_time, obs_);
    obs.verdict = result.dominant_failure();
    obs.zonemd = result.zonemd;
    if (probe.axfr->bitflip_injected) obs.note = probe.axfr->bitflip_note;
    trace_verdict(obs);
    return obs;
  };

  // Planned fault events: full-fidelity probes with the fault knobs set.
  WallClock::time_point phase_start = WallClock::now();
  for (const FaultEvent& event : faults_) {
    if (obs_.metrics)
      obs_.count("campaign.fault_events",
                 {{"kind", fault_kind_name(event.kind)}});
    std::vector<std::pair<int, util::IpAddress>> targets;
    const auto& renumbering = catalog_.renumbering();
    bool all_servers = event.root_index < 0;
    if (all_servers) {
      // "all servers": the VP's whole round is affected (clock skew). One
      // representative transfer per event stands for the round; Table 2
      // counts zone files, not addresses.
      targets.emplace_back(10, catalog_.server(10).ipv4);  // k.root
    } else if (event.old_b_address) {
      targets.emplace_back(1, event.family == util::IpFamily::V4
                                  ? renumbering.old_ipv4
                                  : renumbering.old_ipv6);
    } else {
      const auto& server = catalog_.server(static_cast<size_t>(event.root_index));
      targets.emplace_back(event.root_index,
                           event.family == util::IpFamily::V4 ? server.ipv4
                                                              : server.ipv6);
    }
    for (const auto& [root_index, address] : targets) {
      VantagePoint vp = vp_by_id(event.vp_id);
      vp.view.vp_id = event.vp_id;  // keep the plan's VP identity
      if (event.kind == FaultEvent::Kind::ClockSkew)
        vp.clock_offset_s = event.clock_offset_s;
      Prober::FaultKnobs knobs;
      if (event.kind == FaultEvent::Kind::Bitflip) {
        knobs.inject_bitflip = true;
        knobs.bitflip_seed = rng.next();
        knobs.bitflip_prefer_signed = true;  // the detected subset, as in §7
      }
      if (event.kind == FaultEvent::Kind::StaleServer)
        knobs.server_frozen_at = event.server_frozen_at;
      ProbeRecord probe =
          prober_->probe(vp, address, event.when,
                         schedule_.round_at(event.when), knobs);
      ZoneAuditObservation obs = validate_probe(probe, &event);
      obs.affects_all_servers = all_servers;
      observations.push_back(std::move(obs));
    }
  }
  record_phase_wall(obs_, "audit-fault-events", phase_start);

  // Clean transfers sampled across the campaign and the address set.
  phase_start = WallClock::now();
  auto addresses = catalog_.service_addresses(schedule_.config().end);
  for (size_t i = 0; i < clean_samples; ++i) {
    const VantagePoint& vp = vps_[rng.uniform(vps_.size())];
    size_t round = rng.uniform(schedule_.round_count());
    const auto& address = addresses[rng.uniform(addresses.size())];
    ProbeRecord probe =
        prober_->probe(vp, address, schedule_.round_time(round), round, {});
    observations.push_back(validate_probe(probe, nullptr));
  }
  if (obs_.metrics) obs_.count("campaign.clean_samples", clean_samples);
  record_phase_wall(obs_, "audit-clean-samples", phase_start);

  std::sort(observations.begin(), observations.end(),
            [](const ZoneAuditObservation& a, const ZoneAuditObservation& b) {
              return a.when < b.when;
            });
  return observations;
}

}  // namespace rootsim::measure
