#include "measure/vantage.h"

#include <algorithm>

#include "util/strings.h"

namespace rootsim::measure {

const std::vector<RegionQuota>& table3_quotas() {
  static const std::vector<RegionQuota> quotas = {
      {util::Region::Africa, 10, 4, 9},
      {util::Region::Asia, 52, 19, 31},
      {util::Region::Europe, 435, 29, 386},
      {util::Region::NorthAmerica, 133, 3, 94},
      {util::Region::SouthAmerica, 13, 3, 12},
      {util::Region::Oceania, 32, 4, 22},
  };
  return quotas;
}

namespace {

// Facilities of one region, nearest-first to a point.
std::vector<netsim::FacilityId> nearby_facilities(const netsim::Topology& topology,
                                                  util::Region region,
                                                  const util::GeoPoint& at) {
  std::vector<std::pair<double, netsim::FacilityId>> scored;
  for (const auto& facility : topology.facilities) {
    if (facility.region != region) continue;
    scored.emplace_back(util::haversine_km(at, facility.location), facility.id);
  }
  std::sort(scored.begin(), scored.end());
  std::vector<netsim::FacilityId> ids;
  ids.reserve(scored.size());
  for (const auto& [distance, id] : scored) ids.push_back(id);
  return ids;
}

}  // namespace

std::vector<VantagePoint> generate_vantage_points(const netsim::Topology& topology,
                                                  const VantageSetConfig& config) {
  util::Rng rng(config.seed);
  util::Rng placement = rng.fork("vp/placement");
  util::Rng network_rng = rng.fork("vp/networks");
  util::Rng churn_rng = rng.fork("vp/churn");

  std::vector<VantagePoint> vps;
  uint32_t next_id = 0;
  uint32_t next_asn = 20000;  // synthetic AS number space
  uint32_t next_country = 1;

  for (const RegionQuota& quota : table3_quotas()) {
    const util::RegionBox& box = util::region_box(quota.region);
    // Pre-allocate the region's country and network pools so unique counts
    // match Table 3: the first `unique` VPs mint a new value, later ones
    // reuse uniformly.
    std::vector<uint32_t> countries, networks;
    for (int i = 0; i < quota.unique_countries; ++i)
      countries.push_back(next_country++);
    for (int i = 0; i < quota.unique_networks; ++i) networks.push_back(next_asn++);

    // NLNOG RING nodes overwhelmingly sit in data centres, so VP locations
    // cluster around facilities (weighted by facility attractiveness) with a
    // minority scattered across the region.
    std::vector<double> facility_weights;
    std::vector<const netsim::Facility*> region_facilities;
    for (const auto& facility : topology.facilities) {
      if (facility.region != quota.region) continue;
      region_facilities.push_back(&facility);
      facility_weights.push_back(facility.attractiveness);
    }
    for (int i = 0; i < quota.vantage_points; ++i) {
      VantagePoint vp;
      vp.view.vp_id = next_id++;
      vp.view.region = quota.region;
      if (!region_facilities.empty() && placement.chance(0.8)) {
        const netsim::Facility* home =
            region_facilities[placement.weighted_index(facility_weights)];
        vp.view.location = {home->location.lat_deg + placement.normal(0, 0.8),
                            home->location.lon_deg + placement.normal(0, 0.8)};
      } else {
        vp.view.location = {placement.uniform_real(box.lat_min, box.lat_max),
                            placement.uniform_real(box.lon_min, box.lon_max)};
      }
      // First pass through the pools guarantees every country/network is
      // used at least once; afterwards assignment is uniform.
      vp.country_code = i < quota.unique_countries
                            ? countries[static_cast<size_t>(i)]
                            : countries[network_rng.uniform(countries.size())];
      vp.view.asn = i < quota.unique_networks
                        ? networks[static_cast<size_t>(i)]
                        : networks[network_rng.uniform(networks.size())];
      // Connectivity: the nearest 1..3 facilities of the region.
      auto nearest = nearby_facilities(topology, quota.region, vp.view.location);
      int breadth = static_cast<int>(
          config.min_facilities +
          network_rng.uniform(static_cast<uint64_t>(
              config.max_facilities - config.min_facilities + 1)));
      for (int k = 0; k < breadth && k < static_cast<int>(nearest.size()); ++k)
        vp.view.connectivity.push_back(nearest[static_cast<size_t>(k)]);
      vp.view.churn_multiplier = churn_rng.lognormal(0.0, config.churn_sigma);
      vp.node_name = util::format(
          "%s%03u.ring.nlnog.net",
          util::to_lower(std::string(util::region_short_name(quota.region))).c_str(),
          vp.view.vp_id);
      vps.push_back(std::move(vp));
    }
  }
  return vps;
}

std::array<RegionSummary, util::kRegionCount> summarize_regions(
    const std::vector<VantagePoint>& vps) {
  std::array<RegionSummary, util::kRegionCount> out{};
  std::array<std::vector<uint32_t>, util::kRegionCount> countries, networks;
  for (const auto& vp : vps) {
    size_t r = static_cast<size_t>(vp.view.region);
    ++out[r].vantage_points;
    countries[r].push_back(vp.country_code);
    networks[r].push_back(vp.view.asn);
  }
  for (size_t r = 0; r < util::kRegionCount; ++r) {
    auto count_unique = [](std::vector<uint32_t>& v) {
      std::sort(v.begin(), v.end());
      return static_cast<int>(std::unique(v.begin(), v.end()) - v.begin());
    };
    out[r].unique_countries = count_unique(countries[r]);
    out[r].unique_networks = count_unique(networks[r]);
  }
  return out;
}

}  // namespace rootsim::measure
