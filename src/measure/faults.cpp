#include "measure/faults.h"

namespace rootsim::measure {

std::vector<FaultEvent> default_fault_plan() {
  using util::IpFamily;
  using util::make_time;
  std::vector<FaultEvent> events;

  // Row 1: "Sig. not incepted", 5 SOAs over 5 observations, 23-12-21 10:35 ..
  // 23-12-23 10:35, all servers, VPid 1. A VP whose clock runs days behind
  // validates freshly-signed zones before their inception.
  for (int i = 0; i < 5; ++i) {
    FaultEvent e;
    e.kind = FaultEvent::Kind::ClockSkew;
    e.vp_id = 101;
    e.root_index = -1;
    e.when = make_time(2023, 12, 21, 10, 35) + i * 12 * 3600;
    e.clock_offset_s = -3 * util::kSecondsPerDay;  // 3 days slow
    e.table2_vp_id = 1;
    events.push_back(e);
  }
  // Row 2: one observation, 23-10-02 22:00, all servers, VPid 2.
  {
    FaultEvent e;
    e.kind = FaultEvent::Kind::ClockSkew;
    e.vp_id = 202;
    e.root_index = -1;
    e.when = make_time(2023, 10, 2, 22, 0);
    e.clock_offset_s = -2 * util::kSecondsPerDay;
    e.table2_vp_id = 2;
    events.push_back(e);
  }

  // Bogus-signature rows: bitflips on three faulty-RAM VPs.
  // Row 3: d.root (v6), 2 SOAs, 3 observations, 23-09-26 .. 23-10-24, VPid 3.
  {
    util::UnixTime times[3] = {make_time(2023, 9, 26, 21, 46),
                               make_time(2023, 10, 11, 8, 0),
                               make_time(2023, 10, 24, 10, 0)};
    for (auto t : times) {
      FaultEvent e;
      e.kind = FaultEvent::Kind::Bitflip;
      e.vp_id = 303;
      e.root_index = 3;  // d
      e.family = IpFamily::V6;
      e.when = t;
      e.table2_vp_id = 3;
      events.push_back(e);
    }
  }
  // Row 4: g.root (v6) and b.root (old v4), 2 SOAs, 2 obs, VPid 4.
  {
    FaultEvent e1;
    e1.kind = FaultEvent::Kind::Bitflip;
    e1.vp_id = 404;
    e1.root_index = 6;  // g
    e1.family = IpFamily::V6;
    e1.when = make_time(2023, 11, 18, 7, 30);
    e1.table2_vp_id = 4;
    events.push_back(e1);
    FaultEvent e2 = e1;
    e2.root_index = 1;  // b
    e2.family = IpFamily::V4;
    e2.old_b_address = true;
    e2.when = make_time(2023, 11, 21, 6, 16);
    events.push_back(e2);
  }
  // Row 5: c.root (v6) and g.root (v4), 3 SOAs, 3 obs, VPid 5.
  {
    FaultEvent e;
    e.kind = FaultEvent::Kind::Bitflip;
    e.vp_id = 505;
    e.table2_vp_id = 5;
    e.root_index = 2;  // c
    e.family = IpFamily::V6;
    e.when = make_time(2023, 9, 26, 10, 15);
    events.push_back(e);
    e.root_index = 6;  // g
    e.family = IpFamily::V4;
    e.when = make_time(2023, 10, 3, 9, 0);
    events.push_back(e);
    e.when = make_time(2023, 10, 9, 7, 0);
    events.push_back(e);
  }

  // Signature-expired rows: stale d.root instances.
  // Tokyo: 1 SOA, 12 observations, 23-08-16 10:00..11:31, 3 VPs (6-8).
  {
    int table2_id = 6;
    for (uint32_t vp : {606u, 607u, 608u}) {
      for (int i = 0; i < 4; ++i) {
        FaultEvent e;
        e.kind = FaultEvent::Kind::StaleServer;
        e.vp_id = vp;
        e.root_index = 3;  // d
        e.family = IpFamily::V6;
        e.when = make_time(2023, 8, 16, 10, 0) + i * 1800;
        e.server_frozen_at = make_time(2023, 7, 28);  // ~19 days stale
        e.table2_vp_id = table2_id;
        events.push_back(e);
      }
      ++table2_id;
    }
  }
  // Leeds: 1 SOA, 40 observations, 23-10-06 10:00..13:31, 8 VPs (9-16),
  // both families.
  {
    int table2_id = 9;
    for (uint32_t vp = 609; vp <= 616; ++vp) {
      for (int i = 0; i < 5; ++i) {
        FaultEvent e;
        e.kind = FaultEvent::Kind::StaleServer;
        e.vp_id = vp;
        e.root_index = 3;  // d
        e.family = (i % 2 == 0) ? IpFamily::V4 : IpFamily::V6;
        e.when = make_time(2023, 10, 6, 10, 0) + i * 1800;
        e.server_frozen_at = make_time(2023, 9, 18);
        e.table2_vp_id = table2_id;
        events.push_back(e);
      }
      ++table2_id;
    }
  }
  return events;
}

}  // namespace rootsim::measure
