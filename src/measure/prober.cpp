#include "measure/prober.h"

#include "dns/axfr.h"
#include "rss/endpoint.h"
#include "util/strings.h"

namespace rootsim::measure {

Prober::Prober(const rss::ZoneAuthority& authority, const rss::RootCatalog& catalog,
               const netsim::AnycastRouter& router,
               netsim::TransportConfig transport_config, obs::Obs obs)
    : authority_(&authority),
      catalog_(&catalog),
      transport_(router, std::move(transport_config), obs) {
  rebind_obs(obs);
}

void Prober::rebind_obs(obs::Obs obs) {
  obs_ = obs;
  transport_.rebind_obs(obs);
  if (obs_.metrics) {
    probes_ = obs_.counter_handle("prober.probes");
    timeouts_ = obs_.counter_handle("prober.query_timeouts");
    tcp_retries_ = obs_.counter_handle("prober.tcp_retries");
    axfr_ok_ = obs_.counter_handle("prober.axfr", {{"result", "ok"}});
    axfr_refused_ = obs_.counter_handle("prober.axfr", {{"result", "refused"}});
    rtt_ms_[0] = obs_.histogram_handle("prober.rtt_ms", {{"family", "v4"}});
    rtt_ms_[1] = obs_.histogram_handle("prober.rtt_ms", {{"family", "v6"}});
  } else {
    probes_ = timeouts_ = tcp_retries_ = nullptr;
    axfr_ok_ = axfr_refused_ = nullptr;
    rtt_ms_[0] = rtt_ms_[1] = nullptr;
  }
}

std::vector<dns::Question> Prober::query_list() {
  std::vector<dns::Question> questions;
  // ZONEMD ., NS ., NS root-servers.net (+dnssec).
  questions.push_back({dns::Name(), dns::RRType::ZONEMD, dns::RRClass::IN});
  questions.push_back({dns::Name(), dns::RRType::NS, dns::RRClass::IN});
  questions.push_back({*dns::Name::parse("root-servers.net."), dns::RRType::NS,
                       dns::RRClass::IN});
  // The four CHAOS identity queries.
  for (const char* qname :
       {"hostname.bind.", "id.server.", "version.bind.", "version.server."})
    questions.push_back({*dns::Name::parse(qname), dns::RRType::TXT,
                         dns::RRClass::CH});
  // A/AAAA/TXT for every root server name.
  for (char c = 'a'; c <= 'm'; ++c) {
    dns::Name name =
        *dns::Name::parse(util::format("%c.root-servers.net.", c));
    questions.push_back({name, dns::RRType::A, dns::RRClass::IN});
    questions.push_back({name, dns::RRType::AAAA, dns::RRClass::IN});
    questions.push_back({name, dns::RRType::TXT, dns::RRClass::IN});
  }
  // Total: 3 + 4 + 39 = 46; the AXFR request is the 47th query of App. F.
  return questions;
}

std::string inject_bitflip(std::vector<dns::ResourceRecord>& records,
                           uint64_t seed, bool prefer_signed) {
  util::Rng rng(seed);
  // Prefer an RRSIG signature byte (the Fig. 10 case), else a TLD owner-name
  // character (the .ruhr case), else any A-record octet.
  std::vector<size_t> rrsig_indices, name_indices, other_indices;
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].type == dns::RRType::RRSIG)
      rrsig_indices.push_back(i);
    else if (records[i].type == dns::RRType::NS &&
             records[i].name.label_count() == 1)
      name_indices.push_back(i);
    else if (records[i].type == dns::RRType::A)
      other_indices.push_back(i);
  }
  double which = prefer_signed ? 0.0 : rng.uniform01();
  if (which < 0.6 && !rrsig_indices.empty()) {
    size_t idx = rrsig_indices[rng.uniform(rrsig_indices.size())];
    auto& sig = std::get<dns::RrsigData>(records[idx].rdata);
    if (!sig.signature.empty()) {
      size_t byte = rng.uniform(sig.signature.size());
      uint8_t bit = static_cast<uint8_t>(1u << rng.uniform(8));
      sig.signature[byte] ^= bit;
      return util::format("RRSIG(%s) over %s: bit %02x flipped at byte %zu",
                          rrtype_to_string(sig.type_covered).c_str(),
                          records[idx].name.to_string().c_str(), bit, byte);
    }
  }
  if (which < 0.9 && !name_indices.empty()) {
    size_t idx = name_indices[rng.uniform(name_indices.size())];
    // Flip bit 0x10 in the first character of the TLD label: 'r' -> 'b',
    // exactly the class of the .ruhr incident.
    std::string label = records[idx].name.labels()[0];
    std::string original = label;
    label[0] = static_cast<char>(label[0] ^ 0x10);
    auto flipped = dns::Name::parse(label + ".");
    if (flipped) {
      records[idx].name = *flipped;
      return util::format("owner name .%s became .%s", original.c_str(),
                          label.c_str());
    }
  }
  if (!other_indices.empty()) {
    size_t idx = other_indices[rng.uniform(other_indices.size())];
    auto& a = std::get<dns::AData>(records[idx].rdata);
    auto bytes = a.address.bytes();
    bytes[3] ^= 0x01;
    a.address = util::IpAddress::v4(bytes[0], bytes[1], bytes[2], bytes[3]);
    return "glue A record address bit flipped";
  }
  return "no flippable record";
}

ProbeRecord Prober::probe(const VantagePoint& vp, const util::IpAddress& address,
                          util::UnixTime now, uint64_t round,
                          const FaultKnobs& faults) const {
  ProbeRecord record;
  record.vp_id = vp.view.vp_id;
  record.true_time = now;
  record.vp_time = vp.local_clock(now);
  record.family = address.family();
  record.root_index = catalog_->index_of_address(address);
  const auto& renumbering = catalog_->renumbering();
  record.old_b_address =
      address == renumbering.old_ipv4 || address == renumbering.old_ipv6;
  obs::inc(probes_);
  if (obs_.tracer) {
    record.trace_span = obs_.tracer->begin_span(
        "probe", now,
        {{"vp", util::format("%u", vp.view.vp_id)},
         {"root", record.root_index >= 0
                      ? std::string(1, static_cast<char>('a' + record.root_index))
                      : std::string("?")},
         {"family", std::string(util::to_string(record.family))},
         {"addr", address.to_string()},
         {"round", util::format("%llu", static_cast<unsigned long long>(round))}});
  }
  if (record.root_index < 0) {
    if (obs_.tracer) {
      obs_.tracer->event(record.trace_span, "probe.error", now,
                         {{"reason", "not-a-root-service-address"}});
      obs_.tracer->end_span(record.trace_span, now);
    }
    return record;
  }

  // Open the path for this probe's whole conversation: exactly one route
  // selection binds the anycast site, the link conditions and the path RNG.
  netsim::Transport::Path path = transport_.open_path(
      vp.view, static_cast<uint32_t>(record.root_index), address.family(),
      round);
  const netsim::RouteResult& route = path.route();
  record.site_id = route.site_id;
  record.rtt_ms = transport_.effective_rtt_ms(route);
  record.second_to_last_hop = route.second_to_last_hop;
  record.traceroute_hops = route.hops;
  obs::observe(rtt_ms_[record.family == util::IpFamily::V4 ? 0 : 1],
               record.rtt_ms);

  const netsim::AnycastSite& site =
      transport_.router().topology().sites[route.site_id];
  if (obs_.tracer) {
    obs_.tracer->event(
        record.trace_span, "traceroute", now,
        {{"site", site.identity},
         {"rtt_ms", util::format("%.3f", record.rtt_ms)},
         {"hops", util::format("%zu", route.hops.size())},
         {"second_to_last",
          util::format("%llu", static_cast<unsigned long long>(
                                   route.second_to_last_hop))}});
  }
  rss::InstanceBehavior behavior;
  behavior.frozen_at = faults.server_frozen_at;
  rss::RootServerInstance instance(*authority_, *catalog_,
                                   static_cast<uint32_t>(record.root_index),
                                   site.identity, behavior, obs_);
  rss::InstanceEndpoint endpoint(instance);

  // The 46 dig queries, each a full transport exchange over the open path.
  auto note_query = [&](const QueryResult& result) {
    if (obs_.metrics) {
      obs_.count("prober.queries",
                 {{"rcode", result.timed_out
                                ? std::string("TIMEOUT")
                                : rcode_to_string(result.rcode)}});
      if (result.timed_out) timeouts_->inc();
      if (result.retried_over_tcp) tcp_retries_->inc();
    }
    if (obs_.tracer) {
      std::vector<obs::TraceAttr> attrs{
          {"qname", result.question.qname.to_string()},
          {"qtype", rrtype_to_string(result.question.qtype)},
          {"class", result.question.qclass == dns::RRClass::CH ? "CH" : "IN"}};
      if (result.timed_out)
        attrs.push_back({"status", "TIMEOUT"});
      else
        attrs.push_back({"status", rcode_to_string(result.rcode)});
      if (result.retried_over_tcp) attrs.push_back({"tcp", "1"});
      if (result.tcp_refused) attrs.push_back({"tcp_refused", "1"});
      // Retransmissions only (a clean path logs nothing extra, keeping the
      // default trace stream identical to the pre-transport one).
      if (result.udp_attempts > 1)
        attrs.push_back(
            {"udp_attempts", util::format("%u", result.udp_attempts)});
      attrs.push_back({"answers", util::format("%zu", result.answers.size())});
      obs_.tracer->event(record.trace_span, "query", now, std::move(attrs));
    }
  };
  uint16_t query_id = static_cast<uint16_t>(round * 131 + vp.view.vp_id);
  for (const dns::Question& question : query_list()) {
    dns::Message query = dns::make_query(query_id++, question.qname,
                                         question.qtype, question.qclass,
                                         /*dnssec_ok=*/true);
    netsim::ExchangeOutcome outcome =
        transport_.exchange(path, endpoint, query, now);
    QueryResult result;
    result.question = question;
    result.timed_out = outcome.timed_out;
    result.retried_over_tcp = outcome.retried_over_tcp;
    result.tcp_refused = outcome.tcp_refused;
    result.transport = outcome.transport;
    result.udp_attempts = outcome.stats.udp_attempts;
    result.tcp_attempts = outcome.stats.tcp_attempts;
    result.wire_bytes = outcome.stats.bytes_sent + outcome.stats.bytes_received;
    result.rtt_ms = outcome.stats.time_ms;
    record.transport.absorb(outcome.stats);
    if (outcome.delivered) {
      result.rcode = outcome.response.rcode;
      result.answers = std::move(outcome.response.answers);
      if (question.qclass == dns::RRClass::CH && !result.answers.empty()) {
        const auto* txt = std::get_if<dns::TxtData>(&result.answers[0].rdata);
        std::string qname = util::to_lower(question.qname.to_string());
        if (txt && !txt->strings.empty() &&
            (qname == "hostname.bind." || qname == "id.server."))
          record.instance_identity = txt->strings[0];
      }
    }
    note_query(result);
    record.queries.push_back(std::move(result));
  }

  // The AXFR (query 47): framed over simulated TCP (RFC 5936) and parsed
  // back, so every transferred byte traverses the wire codec. The server
  // side hands us its per-serial cached wire image; the decode below is this
  // probe's own copy, so bitflip injection never touches shared state.
  AxfrResult axfr;
  netsim::AxfrOutcome transfer = transport_.axfr(path, endpoint, now);
  record.transport.absorb(transfer.stats);
  if (!transfer.delivered) {
    axfr.refused = true;
    axfr.timed_out = transfer.timed_out;
    axfr.tcp_refused = transfer.tcp_refused;
  } else {
    auto parsed = dns::decode_axfr_stream(transfer.stream);
    if (!parsed.ok()) {
      axfr.refused = true;  // treated as a failed transfer
    } else {
      if (faults.inject_bitflip) {
        axfr.bitflip_note = inject_bitflip(parsed.records, faults.bitflip_seed,
                                           faults.bitflip_prefer_signed);
        axfr.bitflip_injected = true;
      }
      axfr.records = std::move(parsed.records);
      if (const auto* soa = std::get_if<dns::SoaData>(&axfr.records.front().rdata))
        axfr.soa_serial = soa->serial;
    }
  }
  obs::inc(axfr.refused ? axfr_refused_ : axfr_ok_);
  if (obs_.tracer) {
    std::vector<obs::TraceAttr> attrs{
        {"status", axfr.timed_out ? "timeout"
                                  : (axfr.refused ? "refused" : "ok")}};
    if (!axfr.refused) {
      attrs.push_back({"serial", util::format("%u", axfr.soa_serial)});
      attrs.push_back({"records", util::format("%zu", axfr.records.size())});
    }
    if (axfr.bitflip_injected) attrs.push_back({"bitflip", axfr.bitflip_note});
    obs_.tracer->event(record.trace_span, "axfr", now, std::move(attrs));
    obs_.tracer->end_span(
        record.trace_span, now,
        {{"queries", util::format("%zu", record.queries.size())},
         {"site", site.identity}});
  }
  record.axfr = std::move(axfr);

  // Service-level view of this probe for the streaming SLO plane: the
  // address was "available" if any of the round's queries got an answer
  // (RSSAC047 counts a responding service, not a clean one), and an
  // available probe contributes its path RTT to the letter's latency band.
  if (obs_.slo && record.root_index >= 0) {
    bool answered = false;
    for (const QueryResult& query : record.queries)
      if (!query.timed_out) {
        answered = true;
        break;
      }
    obs::SloSample sample;
    sample.root = static_cast<uint8_t>(record.root_index);
    sample.v6 = record.family == util::IpFamily::V6;
    sample.when = record.true_time;
    sample.kind = obs::SloSample::Kind::Availability;
    sample.ok = answered;
    obs_.slo->record(sample);
    if (answered) {
      sample.kind = obs::SloSample::Kind::Latency;
      sample.value = record.rtt_ms;
      obs_.slo->record(sample);
    }
  }
  return record;
}

}  // namespace rootsim::measure
