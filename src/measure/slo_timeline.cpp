// Campaign::run_slo_timeline — the streaming RSSAC047 monitor's data feed.
//
// One work unit per 6 h bucket of simulated time (the SloCollector's bucket
// width, so a unit writes exactly its own cells). Each unit draws its RNG by
// forking the campaign seed by bucket index — never a shared sequential
// stream — and records into a per-unit obs shard merged in unit order, which
// is the whole determinism argument: the same cells exist with the same
// contents no matter how many workers ran or who stole what.
//
// What a unit samples, per (letter, family):
//   * availability/latency probes: VP drawn per probe, routed through the
//     anycast router at the probe's schedule round; the chosen site answers
//     unless the Poisson outage model or a scripted event window has it
//     dark. Answered probes contribute the transport's effective RTT.
//   * zone staleness: the probed site serves the previous serial until its
//     deterministic per-(site, serial) refresh delay elapses; the sample is
//     the served serial's age behind the master.
//   * publication latency: on buckets containing a serial bump (the zone
//     authority publishes 00:00 / 12:00 UTC) the refresh delays of sampled
//     sites are the publication-latency samples.
//   * integrity: one mid-bucket ZONEMD check — verifiable under Sha384,
//     present-but-unverifiable under the private algorithm (the rollout
//     phase the paper watched), absent before either.

#include <algorithm>
#include <cmath>

#include "exec/engine.h"
#include "measure/campaign.h"
#include "util/geo.h"
#include "util/rng.h"
#include "util/strings.h"

namespace rootsim::measure {

namespace {

constexpr int64_t kBucketSeconds = obs::SloCollector::kBucketSeconds;
/// The zone authority publishes a new serial at 00:00 and 12:00 UTC
/// (ZoneAuthority::serial_at's NN digit).
constexpr int64_t kPublishIntervalSeconds = 12 * 3600;

util::UnixTime last_publish_at_or_before(util::UnixTime t) {
  return t - (t % kPublishIntervalSeconds);
}

/// Deterministic refresh delay of one site for one publication: how long
/// after the serial bump the site keeps serving the old zone. Lognormal with
/// a ~10 min median, capped at 30 min — under the healthy distribution
/// model the RSSAC047 35-min publication target is met by construction, so
/// a publication incident can only come from a scenario that breaks the
/// distribution pipeline, never from the tail of the background model.
double publication_delay_s(uint64_t seed, uint32_t root, uint32_t site_id,
                           util::UnixTime publish) {
  util::Rng rng = util::Rng(seed).fork(
      util::format("slo-pub-%u-%u-%lld", root, site_id,
                   static_cast<long long>(publish)));
  return std::min(rng.lognormal(std::log(600.0), 0.5), 1800.0);
}

}  // namespace

SloTimelineResult Campaign::run_slo_timeline(
    const SloTimelineOptions& options) const {
  const util::UnixTime start = schedule_.config().start;
  const util::UnixTime end = schedule_.config().end;
  const int64_t first_bucket = obs::SloCollector::bucket_index(start);
  const int64_t last_bucket = obs::SloCollector::bucket_index(end - 1);
  const size_t total_units =
      static_cast<size_t>(last_bucket - first_bucket + 1);
  size_t workers =
      std::max<size_t>(1, std::min(exec::resolve_workers(options.workers),
                                   total_units));

  // Samples land in the campaign's own SloCollector when one is attached
  // (Recorder-built campaigns), else in a run-local collector — either way
  // through the standard ObsShards merge path.
  obs::SloCollector local_collector;
  obs::Obs main = obs_;
  if (!main.slo) main.slo = &local_collector;
  exec::ObsShards shards(main, total_units);

  std::vector<netsim::FlightRecorder::Shard*> flight_shards;
  if (options.flight_recorder && workers > 1)
    flight_shards = options.flight_recorder->make_shards(workers);

  const util::Rng timeline_rng = util::Rng(config_.seed).fork("slo-timeline");
  const netsim::Transport& transport = prober_->transport();

  // The campaign config's scenario events first, then whatever the caller
  // layered on — one merged list drives both probing and attribution, so the
  // monitor can never detect an event attribution wasn't offered.
  std::vector<rss::ScriptedOutage> scripted = config_.scripted_outages;
  scripted.insert(scripted.end(), options.scripted_outages.begin(),
                  options.scripted_outages.end());

  // Region/type-scoped events need to know what the probed site is.
  const auto available = [&](uint32_t site_id, uint32_t root,
                             util::UnixTime t) {
    int region = -1;
    int type = -1;
    if (site_id < topology_.sites.size()) {
      region = static_cast<int>(topology_.sites[site_id].region);
      type = static_cast<int>(topology_.sites[site_id].type);
    }
    return rss::site_available_at(site_id, static_cast<int>(root), t, start,
                                  end, options.outages, scripted, region,
                                  type);
  };

  exec::parallel_for(total_units, workers, [&](size_t unit, size_t worker) {
    obs::Obs sink = shards.shard(unit);
    obs::SloCollector* slo = sink.slo;
    if (!slo) return;
    const int64_t bucket = first_bucket + static_cast<int64_t>(unit);
    const util::UnixTime bucket_begin = obs::SloCollector::bucket_start(bucket);
    util::Rng rng = timeline_rng.fork(
        util::format("bucket-%lld", static_cast<long long>(bucket)));
    netsim::FlightRecorder::Shard* flight_shard =
        flight_shards.empty() ? nullptr : flight_shards[worker];

    for (uint32_t root = 0; root < obs::kSloRoots; ++root) {
      for (int fam = 0; fam < 2; ++fam) {
        const bool v6 = fam == 1;
        const util::IpFamily family =
            v6 ? util::IpFamily::V6 : util::IpFamily::V4;

        for (size_t p = 0; p < options.probes_per_bucket; ++p) {
          util::UnixTime t =
              bucket_begin + static_cast<int64_t>(
                                 rng.uniform(static_cast<uint64_t>(
                                     kBucketSeconds)));
          t = std::clamp<util::UnixTime>(t, start, end - 1);
          const VantagePoint& vp = vps_[rng.uniform(vps_.size())];
          const uint64_t round = schedule_.round_at(t);
          const netsim::RouteResult route =
              router_->route_at(vp.view, root, family, round);
          uint32_t serving_site = route.site_id;
          bool up = available(serving_site, root, t);
          double rtt_ms = up ? transport.effective_rtt_ms(route,
                                                          static_cast<int>(root),
                                                          t)
                             : 0.0;
          if (!up && options.route_fallback_candidates > 0) {
            // Catchment-view fallback: the VP's BGP table still carries
            // routes to other sites; the first announced alternative that
            // answers takes the probe, at the RTT its distance implies.
            for (const auto& alt : router_->announced_routes(
                     vp.view, root, family,
                     options.route_fallback_candidates)) {
              if (alt.site_id == route.site_id) continue;
              if (!available(alt.site_id, root, t)) continue;
              serving_site = alt.site_id;
              up = true;
              rtt_ms = util::fiber_rtt_ms(
                           router_->distance_km(vp.view, alt.site_id)) +
                       2.0;
              break;
            }
          }

          obs::SloSample sample;
          sample.root = static_cast<uint8_t>(root);
          sample.v6 = v6;
          sample.when = t;
          sample.kind = obs::SloSample::Kind::Availability;
          sample.ok = up;
          slo->record(sample);

          if (up) {
            sample.kind = obs::SloSample::Kind::Latency;
            sample.value = rtt_ms;
            slo->record(sample);

            // Staleness of the serial this site is serving right now.
            const util::UnixTime publish = last_publish_at_or_before(t);
            if (publish >= start) {
              const double delay =
                  publication_delay_s(config_.seed, root, serving_site,
                                      publish);
              sample.kind = obs::SloSample::Kind::Staleness;
              sample.value =
                  t < publish + static_cast<int64_t>(delay)
                      ? static_cast<double>(t - publish)
                      : 0.0;
              slo->record(sample);
            }
          } else {
            // The monitor's packet-level shadow: a dark site looks like a
            // timeout to the prober, and the flight recorder's failure
            // summary is what lets attribution cross-check transport-level
            // causes against the scripted/event hints.
            netsim::FlightRecord record;
            record.vp_id = vp.view.vp_id;
            record.root_index = static_cast<int>(root);
            record.family = family;
            record.round = round;
            record.site_id = route.site_id;
            record.cause = netsim::FlightRecord::Cause::Timeout;
            record.udp_attempts = 3;
            record.drops = 3;
            record.qname = ".";
            record.qtype = 6;  // SOA
            record.when = t;
            record.time_ms = 10500.0;  // full UDP retry budget
            if (flight_shard)
              flight_shard->record(std::move(record));
            else if (options.flight_recorder)
              options.flight_recorder->record(std::move(record));
          }
        }

        // One mid-bucket integrity check per stream.
        const util::UnixTime check_at = bucket_begin + kBucketSeconds / 2;
        if (check_at >= start && check_at < end) {
          const auto mode = authority_->zonemd_mode_at(check_at);
          if (mode != dnssec::SigningPolicy::ZonemdMode::None) {
            obs::SloSample sample;
            sample.root = static_cast<uint8_t>(root);
            sample.v6 = v6;
            sample.when = check_at;
            sample.kind = obs::SloSample::Kind::Integrity;
            sample.ok = mode == dnssec::SigningPolicy::ZonemdMode::Sha384;
            slo->record(sample);
          }
        }

        // Publication events whose bump lands in this bucket.
        for (util::UnixTime publish =
                 bucket_begin +
                 ((kPublishIntervalSeconds -
                   bucket_begin % kPublishIntervalSeconds) %
                  kPublishIntervalSeconds);
             publish < bucket_begin + kBucketSeconds;
             publish += kPublishIntervalSeconds) {
          if (publish < start || publish >= end) continue;
          const uint64_t round = schedule_.round_at(publish);
          for (size_t s = 0; s < options.publication_samples; ++s) {
            const VantagePoint& vp = vps_[rng.uniform(vps_.size())];
            const netsim::RouteResult route =
                router_->route_at(vp.view, root, family, round);
            obs::SloSample sample;
            sample.root = static_cast<uint8_t>(root);
            sample.v6 = v6;
            sample.when = publish;
            sample.kind = obs::SloSample::Kind::Publication;
            sample.value =
                publication_delay_s(config_.seed, root, route.site_id,
                                    publish);
            slo->record(sample);
          }
        }
      }
    }
  });
  shards.merge();

  SloTimelineResult result;
  result.windows = main.slo->windows(options.thresholds);

  // Attribution hints, in deterministic construction order (the tracker's
  // scoring is order-independent anyway).
  for (const rss::ScriptedOutage& outage : scripted) {
    obs::CauseHint hint;
    hint.start = outage.start;
    hint.end = outage.end;
    hint.root = outage.root_index;
    hint.label = outage.label;
    hint.weight = 2.0;
    result.hints.push_back(hint);
  }
  // Zone-pipeline events from the authority's config: the ZONEMD rollout
  // phases. Present-but-unverifiable is an integrity story by definition.
  if (config_.zone.zonemd_private_start > 0) {
    obs::CauseHint private_alg;
    private_alg.start = config_.zone.zonemd_private_start;
    private_alg.end = config_.zone.zonemd_sha384_start;
    private_alg.metric = static_cast<int>(obs::SloMetric::Integrity);
    private_alg.label = "zonemd-private-algorithm";
    private_alg.weight = 2.0;
    result.hints.push_back(private_alg);
  }
  if (config_.zone.zonemd_sha384_start > 0) {
    obs::CauseHint sha384;
    sha384.start = config_.zone.zonemd_sha384_start;
    sha384.end = config_.zone.zonemd_sha384_start + 2 * util::kSecondsPerDay;
    sha384.metric = static_cast<int>(obs::SloMetric::Integrity);
    sha384.label = "zonemd-sha384-rollout";
    sha384.weight = 1.0;
    result.hints.push_back(sha384);
  }
  if (config_.zone.ksk_roll_at > 0) {
    // Validators chase the new key for a while after the roll; any
    // integrity wobble in that window has an obvious first suspect.
    obs::CauseHint roll;
    roll.start = config_.zone.ksk_roll_at;
    roll.end = config_.zone.ksk_roll_at + 2 * util::kSecondsPerDay;
    roll.metric = static_cast<int>(obs::SloMetric::Integrity);
    roll.label = "ksk-rollover";
    roll.weight = 1.0;
    result.hints.push_back(roll);
  }
  for (const obs::CauseHint& hint : config_.extra_hints)
    result.hints.push_back(hint);
  if (options.flight_recorder) {
    // Transport-level corroboration, at low weight: when nothing scripted
    // explains a breach, the failure summary at least names the cause class.
    for (const auto& entry : options.flight_recorder->failure_summary().entries) {
      obs::CauseHint hint;
      hint.start = entry.first;
      hint.end = entry.last + 1;
      hint.root = entry.root_index;
      hint.family = entry.v6 ? 1 : 0;
      hint.metric = static_cast<int>(obs::SloMetric::Availability);
      hint.label = std::string("transport-") +
                   std::string(netsim::to_string(entry.cause));
      hint.weight = 0.5;
      result.hints.push_back(hint);
    }
  }

  obs::IncidentTracker tracker(options.thresholds);
  tracker.observe(result.windows);
  tracker.add_hints(result.hints);
  result.incidents = tracker.incidents();
  result.slo_jsonl = obs::SloCollector::windows_to_jsonl(
      result.windows, config_.scenario_name);
  result.incidents_jsonl = obs::IncidentTracker::incidents_to_jsonl(
      result.incidents, config_.scenario_name);

  for (uint32_t root = 0; root < obs::kSloRoots; ++root) {
    for (int fam = 0; fam < 2; ++fam) {
      const obs::SloCollector::Cell totals =
          main.slo->totals(static_cast<uint8_t>(root), fam == 1);
      result.probes += totals.probes;
      result.failed_probes += totals.probes - totals.answered;
      result.latency_samples += totals.rtt_us.count();
      result.publication_count += totals.publication_s.count();
      result.staleness_samples += totals.staleness_s.count();
      result.integrity_checks += totals.integrity_checks;
      result.integrity_failures +=
          totals.integrity_checks - totals.integrity_ok;
    }
  }
  if (obs_.metrics) {
    obs_.count("campaign.slo_timeline_probes", result.probes);
    obs_.count("campaign.slo_timeline_incidents", result.incidents.size());
  }
  return result;
}

}  // namespace rootsim::measure
