// Fault events: scheduled faulty zone transfers the audit executes.
//
// A plan is scenario data — the paper's Table 2 plan (bad clocks -> "Sig.
// not incepted", faulty RAM -> bitflipped AXFRs -> "Bogus Signature", stale
// d.root instances -> "Signature expired") lives in scenario/library.cpp as
// the `paper-2023` spec's fault timeline and reaches the campaign through
// CampaignConfig::fault_plan.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/ip.h"
#include "util/timeutil.h"

namespace rootsim::measure {

/// One scheduled faulty zone transfer.
struct FaultEvent {
  enum class Kind { ClockSkew, Bitflip, StaleServer };
  Kind kind = Kind::Bitflip;
  uint32_t vp_id = 0;
  /// Root whose transfer is affected; -1 = all roots probed this round.
  int root_index = -1;
  util::IpFamily family = util::IpFamily::V4;
  bool old_b_address = false;
  util::UnixTime when = 0;
  /// ClockSkew: the VP's offset in seconds at this event.
  int64_t clock_offset_s = 0;
  /// StaleServer: the time the instance's zone copy froze.
  std::optional<util::UnixTime> server_frozen_at;
  /// Table 2 VPid bucket for reporting.
  int table2_vp_id = 0;
};

}  // namespace rootsim::measure
