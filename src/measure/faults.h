// The campaign's fault plan: the hardware/operational reality behind the
// paper's Table 2, expressed as scheduled events.
//
// Reality supplied these faults for free; the simulation injects them so the
// validation pipeline exercises the same detection paths:
//   * two VPs with bad clocks -> "Sig. not incepted" verdicts (6 cases);
//   * three VPs with faulty RAM -> bitflipped AXFR payloads (8 transfers,
//     5 servers) -> "Bogus Signature" verdicts;
//   * two stale d.root instances (Tokyo: 3 VPs/12 obs; Leeds: 7 VPs/40 obs)
//     -> "Signature expired" verdicts.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/ip.h"
#include "util/timeutil.h"

namespace rootsim::measure {

/// One scheduled faulty zone transfer.
struct FaultEvent {
  enum class Kind { ClockSkew, Bitflip, StaleServer };
  Kind kind = Kind::Bitflip;
  uint32_t vp_id = 0;
  /// Root whose transfer is affected; -1 = all roots probed this round.
  int root_index = -1;
  util::IpFamily family = util::IpFamily::V4;
  bool old_b_address = false;
  util::UnixTime when = 0;
  /// ClockSkew: the VP's offset in seconds at this event.
  int64_t clock_offset_s = 0;
  /// StaleServer: the time the instance's zone copy froze.
  std::optional<util::UnixTime> server_frozen_at;
  /// Table 2 VPid bucket for reporting.
  int table2_vp_id = 0;
};

/// The default plan reproducing Table 2's rows.
std::vector<FaultEvent> default_fault_plan();

}  // namespace rootsim::measure
