// The per-round measurement procedure, a functional port of the paper's
// Appendix F collection script.
//
// For each root service address the script runs, per round:
//   * one traceroute (mtr -c 1),
//   * an AXFR of the root zone,
//   * ZONEMD, NS ., NS root-servers.net queries (+dnssec),
//   * the four CHAOS identity queries,
//   * A/AAAA/TXT for each of the 13 root server names (39 queries),
// i.e. 47 DNS queries + 1 AXFR + 1 traceroute per address (paper §B).
//
// Every exchange rides netsim::Transport: the prober opens one path per
// probe (one route selection, like the kernel's route cache) and sends real
// wire-format messages over it, so packet loss, truncation retries, TCP
// fallback and timeout budgets all happen where they would in reality.
// Fault injection (bitflips, stale servers, skewed clocks) happens on
// exactly the paths it would too: the transfer payload and the validator's
// clock.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dns/message.h"
#include "measure/vantage.h"
#include "netsim/transport.h"
#include "obs/obs.h"
#include "rss/server.h"

namespace rootsim::measure {

/// Result of one DNS query.
struct QueryResult {
  dns::Question question;
  dns::Rcode rcode = dns::Rcode::NoError;
  bool timed_out = false;
  /// The UDP response came back truncated and was retried over TCP.
  bool retried_over_tcp = false;
  /// Truncated answer on a path that refuses TCP: this is all we got.
  bool tcp_refused = false;
  /// The protocol the final response arrived over.
  netsim::TransportProto transport = netsim::TransportProto::Udp;
  /// Datagrams / SYNs this query cost (1 / 0 on a clean path).
  uint32_t udp_attempts = 0;
  uint32_t tcp_attempts = 0;
  /// Total bytes on the wire, both directions, including retries.
  uint64_t wire_bytes = 0;
  /// Simulated time the exchange took: one path RTT on a clean UDP answer,
  /// plus timeout budgets for drops and handshake+RTT for a TCP retry.
  double rtt_ms = 0;
  std::vector<dns::ResourceRecord> answers;
};

/// Result of one AXFR attempt, including raw records so corruption survives
/// into the analysis exactly as it would in a stored .dig file.
struct AxfrResult {
  bool refused = false;
  /// The TCP connection never established (SYN loss on a lossy path).
  bool timed_out = false;
  /// The path refuses TCP outright: no transfer is possible at all.
  bool tcp_refused = false;
  uint32_t soa_serial = 0;
  std::vector<dns::ResourceRecord> records;
  bool bitflip_injected = false;
  std::string bitflip_note;
};

/// Everything one (vp, address, round) measurement produces.
struct ProbeRecord {
  /// Id of the probe's trace span when a tracer was attached (0 otherwise);
  /// lets downstream stages (validation in the audit) nest their events
  /// under the probe that produced the data.
  uint64_t trace_span = 0;
  uint32_t vp_id = 0;
  int root_index = -1;
  util::IpFamily family = util::IpFamily::V4;
  bool old_b_address = false;
  util::UnixTime true_time = 0;   // wall clock
  util::UnixTime vp_time = 0;     // the VP's possibly skewed clock
  uint32_t site_id = 0;           // anycast site that answered
  std::string instance_identity;  // hostname.bind answer
  /// Path RTT under the transport's link conditions (jitter-free).
  double rtt_ms = 0;
  netsim::RouterId second_to_last_hop = 0;
  std::vector<netsim::RouterId> traceroute_hops;
  std::vector<QueryResult> queries;
  std::optional<AxfrResult> axfr;
  /// Wire-level accounting aggregated over the probe's 46 queries + AXFR.
  netsim::TransportStats transport;
};

/// Executes measurement rounds against simulated instances.
class Prober {
 public:
  /// `obs` (optional) records per-probe spans with one child event per
  /// query/AXFR, and the `prober.*` counters + RTT histograms. The default
  /// null sink keeps the probe loop on its uninstrumented path.
  Prober(const rss::ZoneAuthority& authority, const rss::RootCatalog& catalog,
         const netsim::AnycastRouter& router, obs::Obs obs = {})
      : Prober(authority, catalog, router, netsim::TransportConfig{}, obs) {}

  /// Same, with explicit link conditions / retry policy for the simulated
  /// transport all of this prober's exchanges ride.
  Prober(const rss::ZoneAuthority& authority, const rss::RootCatalog& catalog,
         const netsim::AnycastRouter& router,
         netsim::TransportConfig transport_config, obs::Obs obs = {});

  /// Full-fidelity probe of one service address from one VP at `round`.
  /// `behavior` overrides the contacted instance's serving state (stale zone
  /// injection); `bitflip` flips one bit in the transferred zone.
  struct FaultKnobs {
    std::optional<util::UnixTime> server_frozen_at;
    bool inject_bitflip = false;
    uint64_t bitflip_seed = 0;
    /// Target signed material only. The audit sets this because the
    /// campaign's Table 2 events are, by construction, the *detected*
    /// bitflips — before verifiable ZONEMD, a flip in unsigned glue or a
    /// delegation owner was simply invisible (observation bias the paper
    /// inherits too).
    bool bitflip_prefer_signed = false;
  };
  ProbeRecord probe(const VantagePoint& vp, const util::IpAddress& address,
                    util::UnixTime now, uint64_t round,
                    const FaultKnobs& faults) const;
  ProbeRecord probe(const VantagePoint& vp, const util::IpAddress& address,
                    util::UnixTime now, uint64_t round) const {
    return probe(vp, address, now, round, FaultKnobs{});
  }

  /// The transport every exchange of this prober goes through.
  const netsim::Transport& transport() const { return transport_; }

  /// Re-points this prober (and its transport) at a different sink. The
  /// work-stealing audit calls this before each unit so counters land in
  /// that unit's ObsShard; re-resolving the handles costs nothing next to
  /// the 47-query probe. Not safe mid-probe (never happens — each worker
  /// owns its prober and rebinds between units).
  void rebind_obs(obs::Obs obs);

  /// The 47-query list of Appendix F for one address.
  static std::vector<dns::Question> query_list();

 private:
  const rss::ZoneAuthority* authority_;
  const rss::RootCatalog* catalog_;
  netsim::Transport transport_;
  obs::Obs obs_;
  // Pre-resolved metric handles; null when no sink is attached.
  obs::Counter* probes_ = nullptr;
  obs::Counter* timeouts_ = nullptr;
  obs::Counter* tcp_retries_ = nullptr;
  obs::Counter* axfr_ok_ = nullptr;
  obs::Counter* axfr_refused_ = nullptr;
  obs::Histogram* rtt_ms_[2] = {nullptr, nullptr};  // v4, v6
};

/// Applies a single-bit corruption to one record of a transferred zone,
/// preferring RRSIG signatures and owner names — the corruption classes the
/// paper observed (Fig. 10; the .ruhr -> .buhr TLD case). Returns a note
/// describing what was flipped. With `prefer_signed` the flip always lands
/// in an RRSIG signature (guaranteed detectable by DNSSEC alone).
std::string inject_bitflip(std::vector<dns::ResourceRecord>& records,
                           uint64_t seed, bool prefer_signed = false);

}  // namespace rootsim::measure
