// The measurement schedule: rounds at a base cadence over [start, end),
// tightened to a dense cadence inside event windows.
//
// The instants themselves are scenario data, not code: the paper's Fig. 2
// schedule (30-minute rounds 2023-07-03..12-24, 15-minute rounds around the
// ZONEMD introduction and the b.root renumbering) is the `paper-2023` spec
// in scenario/library.cpp, applied through scenario::apply().
#pragma once

#include <cstdint>
#include <vector>

#include "util/timeutil.h"

namespace rootsim::measure {

struct ScheduleConfig {
  util::UnixTime start = 0;
  util::UnixTime end = 0;
  int64_t base_interval_s = 30 * 60;
  int64_t dense_interval_s = 15 * 60;
  struct Window {
    util::UnixTime start;
    util::UnixTime end;
  };
  std::vector<Window> dense_windows;
};

/// The materialized round list.
class Schedule {
 public:
  explicit Schedule(ScheduleConfig config = {});

  size_t round_count() const { return rounds_.size(); }
  util::UnixTime round_time(size_t index) const { return rounds_[index]; }
  const std::vector<util::UnixTime>& rounds() const { return rounds_; }

  /// Index of the last round at or before `t` (0 if t precedes the campaign).
  size_t round_at(util::UnixTime t) const;

  /// True if `t` falls inside a dense (15-minute) window.
  bool in_dense_window(util::UnixTime t) const;

  const ScheduleConfig& config() const { return config_; }

 private:
  ScheduleConfig config_;
  std::vector<util::UnixTime> rounds_;
};

}  // namespace rootsim::measure
