// The measurement schedule (paper Fig. 2).
//
// Rounds run every 30 minutes from 2023-07-03 to 2023-12-24, tightened to 15
// minutes during the two event windows (2023-09-08..10-02 around the ZONEMD
// introduction, 2023-11-20..12-06 around the b.root renumbering).
#pragma once

#include <cstdint>
#include <vector>

#include "util/timeutil.h"

namespace rootsim::measure {

struct ScheduleConfig {
  util::UnixTime start = util::make_time(2023, 7, 3);
  util::UnixTime end = util::make_time(2023, 12, 24);
  int64_t base_interval_s = 30 * 60;
  int64_t dense_interval_s = 15 * 60;
  struct Window {
    util::UnixTime start;
    util::UnixTime end;
  };
  std::vector<Window> dense_windows = {
      {util::make_time(2023, 9, 8), util::make_time(2023, 10, 2)},
      {util::make_time(2023, 11, 20), util::make_time(2023, 12, 6)},
  };
};

/// The materialized round list.
class Schedule {
 public:
  explicit Schedule(ScheduleConfig config = {});

  size_t round_count() const { return rounds_.size(); }
  util::UnixTime round_time(size_t index) const { return rounds_[index]; }
  const std::vector<util::UnixTime>& rounds() const { return rounds_; }

  /// Index of the last round at or before `t` (0 if t precedes the campaign).
  size_t round_at(util::UnixTime t) const;

  /// True if `t` falls inside a dense (15-minute) window.
  bool in_dense_window(util::UnixTime t) const;

  const ScheduleConfig& config() const { return config_; }

 private:
  ScheduleConfig config_;
  std::vector<util::UnixTime> rounds_;
};

}  // namespace rootsim::measure
