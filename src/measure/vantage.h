// Vantage points: the NLNOG-RING-like measurement endpoints.
//
// The set is generated to match the paper's Table 3 exactly: 675 VPs across
// 6 regions (Africa 10, Asia 52, Europe 435, North America 133, South
// America 13, Oceania 32) with the published per-region unique-country and
// unique-network counts. Two VPs carry skewed clocks and three have faulty
// RAM — the hardware reality behind Table 2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/routing.h"
#include "util/geo.h"
#include "util/rng.h"
#include "util/timeutil.h"

namespace rootsim::measure {

struct VantagePoint {
  netsim::VantageView view;   // id, region, location, ASN, connectivity
  std::string node_name;      // "vp042.ring.nlnog.net"-style
  uint32_t country_code = 0;  // synthetic country id, unique per region
  /// Clock offset in seconds (nonzero for the two bad-clock VPs).
  int64_t clock_offset_s = 0;
  /// Probability that a zone transfer through this VP suffers a bitflip
  /// (nonzero only for the faulty-RAM VPs).
  double bitflip_probability = 0;

  util::UnixTime local_clock(util::UnixTime true_time) const {
    return true_time + clock_offset_s;
  }
};

/// Region statistics as published in Table 3.
struct RegionQuota {
  util::Region region;
  int vantage_points;
  int unique_countries;
  int unique_networks;
};

/// The paper's Table 3 values.
const std::vector<RegionQuota>& table3_quotas();

struct VantageSetConfig {
  uint64_t seed = 42;
  /// Connectivity breadth: how many nearby facilities a VP's AS peers at.
  int min_facilities = 1;
  int max_facilities = 3;
  /// Log-sigma of per-VP churn multipliers (Fig. 3's heavy tail).
  double churn_sigma = 1.2;
};

/// Generates the full VP set against a topology (for facility connectivity).
std::vector<VantagePoint> generate_vantage_points(
    const netsim::Topology& topology, const VantageSetConfig& config = {});

/// Summary counts per region (to verify against Table 3).
struct RegionSummary {
  int vantage_points = 0;
  int unique_countries = 0;
  int unique_networks = 0;
};
std::array<RegionSummary, util::kRegionCount> summarize_regions(
    const std::vector<VantagePoint>& vps);

}  // namespace rootsim::measure
