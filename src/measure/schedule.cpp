#include "measure/schedule.h"

#include <algorithm>

namespace rootsim::measure {

Schedule::Schedule(ScheduleConfig config) : config_(std::move(config)) {
  util::UnixTime t = config_.start;
  while (t < config_.end) {
    rounds_.push_back(t);
    t += in_dense_window(t) ? config_.dense_interval_s : config_.base_interval_s;
  }
  // A degenerate horizon (end <= start) still yields one round so round_time
  // and round_at stay total; callers with a real campaign never hit this.
  if (rounds_.empty()) rounds_.push_back(config_.start);
}

bool Schedule::in_dense_window(util::UnixTime t) const {
  for (const auto& window : config_.dense_windows)
    if (t >= window.start && t < window.end) return true;
  return false;
}

size_t Schedule::round_at(util::UnixTime t) const {
  auto it = std::upper_bound(rounds_.begin(), rounds_.end(), t);
  if (it == rounds_.begin()) return 0;
  return static_cast<size_t>(it - rounds_.begin() - 1);
}

}  // namespace rootsim::measure
