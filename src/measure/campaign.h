// Campaign assembly: wires catalog + zone authority + topology + router +
// vantage points + schedule + fault plan into one reproducible experiment.
//
// Everything downstream (the analysis module, the bench harnesses, the
// examples) starts from a Campaign. A campaign is a pure function of its
// config; the config for a given timeline comes from a scenario spec via
// scenario::apply() (the paper's setup is scenario::paper_campaign_config()).
#pragma once

#include <memory>
#include <string>

#include "measure/faults.h"
#include "measure/prober.h"
#include "measure/schedule.h"
#include "measure/vantage.h"
#include "netsim/routing.h"
#include "obs/incident.h"
#include "obs/obs.h"
#include "rss/catalog.h"
#include "rss/outages.h"
#include "rss/zone_authority.h"

namespace rootsim::scenario {
struct ScenarioSpec;
}  // namespace rootsim::scenario

namespace rootsim::measure {

struct CampaignConfig {
  uint64_t seed = 42;
  /// Name of the scenario this config was derived from; stamped as a
  /// `{"scenario":...}` header line on the slo/incidents JSONL exports so
  /// datasets from different scenarios stay distinguishable. Empty = no
  /// header (ad-hoc configs).
  std::string scenario_name;
  netsim::TopologyConfig topology;
  netsim::RouterConfig router;
  VantageSetConfig vantage;
  ScheduleConfig schedule;
  rss::ZoneAuthorityConfig zone;
  /// Link conditions and retry policy of the simulated transport every
  /// client↔server exchange rides (defaults: clean, loss-free paths).
  netsim::TransportConfig transport;
  /// Scale factor < 1 shrinks the VP set for fast tests (keeps proportions).
  double vp_scale = 1.0;
  /// Scheduled faulty transfers the zone audit executes (scenario data; the
  /// paper's Table 2 plan comes from the `paper-2023` spec).
  std::vector<FaultEvent> fault_plan;
  /// Labelled service-affecting event windows of the scenario timeline; the
  /// SLO monitor layers them over the background outage model and offers
  /// each label to incident attribution.
  std::vector<rss::ScriptedOutage> scripted_outages;
  /// Additional attribution hints for events that degrade paths without
  /// darkening sites (route leaks, DDoS collateral on surviving sites).
  std::vector<obs::CauseHint> extra_hints;
  /// Per-letter deployment edits applied over the catalog's Table 4 site
  /// counts before the topology is built (scenario events like collapsing a
  /// letter to unicast).
  struct DeploymentOverride {
    int root_index = 0;
    std::array<int, util::kRegionCount> global_sites{};
    std::array<int, util::kRegionCount> local_sites{};
  };
  std::vector<DeploymentOverride> deployment_overrides;
};

/// One observation in the ZONEMD audit dataset (paper §7 / Table 2).
struct ZoneAuditObservation {
  uint32_t vp_id = 0;
  int table2_vp_id = 0;  // 0 = not a planned fault (clean sample)
  int root_index = -1;
  util::IpFamily family = util::IpFamily::V4;
  bool old_b_address = false;
  util::UnixTime when = 0;
  uint32_t soa_serial = 0;
  dnssec::ValidationStatus verdict = dnssec::ValidationStatus::Valid;
  dnssec::ZonemdStatus zonemd = dnssec::ZonemdStatus::NoZonemd;
  /// A VP-wide fault (bad clock) affects every server of the round; Table 2
  /// prints such rows with server = "all".
  bool affects_all_servers = false;
  std::string note;
};

/// Configuration of the streaming SLO monitor run over the campaign
/// timeline (Campaign::run_slo_timeline).
struct SloTimelineOptions {
  obs::SloThresholds thresholds;
  /// Background per-site outage model (maintenance, upstream failures).
  rss::OutageModelConfig outages;
  /// Extra labelled event windows layered on top of the campaign config's
  /// scenario outages — what attribution can *name*.
  std::vector<rss::ScriptedOutage> scripted_outages;
  /// When a probe's selected site is dark and this is > 0, the probe falls
  /// back to the best announced alternative among this many candidate
  /// routes (the anycast catchment view scenarios ask for); 0 = a dark
  /// site is simply a failed probe, as the paper's monitor treated it.
  size_t route_fallback_candidates = 0;
  /// Availability probes per (letter, family) per 6 h bucket. Windows hold
  /// probes_per_bucket x window_buckets probes, so with the defaults a
  /// single lost probe already dents 99.96 % — which is the point; the
  /// hysteresis is what keeps background noise from paging.
  size_t probes_per_bucket = 12;
  /// Sites sampled per (letter, family) publication event (serial bump).
  size_t publication_samples = 6;
  /// 0 = ROOTSIM_WORKERS env var, else serial (same as run_zone_audit).
  size_t workers = 0;
  /// Optional: failed probes are recorded here (per-worker shards when
  /// workers > 1) and its deterministic failure_summary() feeds attribution.
  netsim::FlightRecorder* flight_recorder = nullptr;
};

/// Everything one monitored timeline run produces. The JSONL strings are the
/// canonical slo.jsonl / incidents.jsonl exports — byte-identical across
/// worker counts and scheduler modes.
struct SloTimelineResult {
  std::vector<obs::SloWindow> windows;
  std::vector<obs::Incident> incidents;
  std::vector<obs::CauseHint> hints;  ///< what attribution was offered
  std::string slo_jsonl;
  std::string incidents_jsonl;
  // Deterministic roll-up counters (bench baselines compare these exactly).
  uint64_t probes = 0;
  uint64_t failed_probes = 0;
  uint64_t latency_samples = 0;
  uint64_t publication_count = 0;
  uint64_t staleness_samples = 0;
  uint64_t integrity_checks = 0;
  uint64_t integrity_failures = 0;
};

class Campaign {
 public:
  /// `obs` (optional) is the observability sink threaded through every layer
  /// the campaign builds — zone authority, router, prober and the audit
  /// loop. The default null sink leaves all instrumentation disabled, so a
  /// Campaign stays a pure function of its config.
  explicit Campaign(CampaignConfig config = {}, obs::Obs obs = {});

  const CampaignConfig& config() const { return config_; }
  const obs::Obs& obs() const { return obs_; }
  const rss::RootCatalog& catalog() const { return catalog_; }
  const rss::ZoneAuthority& authority() const { return *authority_; }
  const netsim::Topology& topology() const { return topology_; }
  const netsim::AnycastRouter& router() const { return *router_; }
  const std::vector<VantagePoint>& vantage_points() const { return vps_; }
  const Schedule& schedule() const { return schedule_; }
  const Prober& prober() const { return *prober_; }
  /// The simulated transport the campaign's prober sends everything through.
  const netsim::Transport& transport() const { return prober_->transport(); }
  const std::vector<FaultEvent>& fault_plan() const { return faults_; }

  /// Runs the ZONEMD audit: executes every planned fault event as a full
  /// AXFR + validation, plus `clean_samples` healthy transfers spread over
  /// the campaign (sampling the 75M-transfer corpus the paper validated).
  ///
  /// `workers` fans the (fault event + clean sample) units out over the exec
  /// engine (0 = ROOTSIM_WORKERS env var, else serial). Every unit draws its
  /// RNG by forking the campaign seed by unit index and records into a
  /// per-worker obs shard merged in unit order, so the observation vector
  /// AND the metric/trace exports are byte-identical for any worker count.
  std::vector<ZoneAuditObservation> run_zone_audit(size_t clean_samples = 200,
                                                   size_t workers = 0) const;

  /// Scenario-first entry point (defined in scenario/apply.cpp; callers link
  /// rootsim_scenario): runs the audit over `spec`'s fault timeline instead
  /// of the campaign config's plan. The campaign should have been built from
  /// the same spec so topology/zone phases line up.
  std::vector<ZoneAuditObservation> run_zone_audit(
      const scenario::ScenarioSpec& spec, size_t clean_samples = 200,
      size_t workers = 0) const;

  /// Runs the streaming RSSAC047 SLO monitor over the campaign's schedule:
  /// one work unit per 6 h bucket of simulated time, each sampling
  /// availability/latency (via the anycast router + outage models),
  /// publication latency and zone staleness (vs. the zone authority's serial
  /// cadence) and ZONEMD integrity for all 13 letters x both families into
  /// per-unit SloCollector shards, merged in unit order. Windows are then
  /// swept, incidents detected with hysteresis, and causes attributed
  /// against scripted outages, zone-pipeline events and the flight
  /// recorder's failure summary. Pure function of (config, options) — the
  /// worker count and steal schedule never change a byte of the exports.
  ///
  /// If the campaign was built with a Recorder, samples also land in its
  /// SloCollector (the obs_.slo sink); otherwise a run-local collector is
  /// used.
  SloTimelineResult run_slo_timeline(const SloTimelineOptions& options = {}) const;

  /// Scenario-first entry point (defined in scenario/apply.cpp; callers link
  /// rootsim_scenario): completes the spec-dependent monitor options (route
  /// fallback for catchment scenarios) and runs the monitor. The campaign
  /// should have been built from the same spec (scenario::apply).
  SloTimelineResult run_slo_timeline(const scenario::ScenarioSpec& spec,
                                     SloTimelineOptions options) const;

 private:
  /// The audit body, over an explicit fault plan (the scenario overload
  /// swaps in the spec's plan; the default overload passes fault_plan()).
  std::vector<ZoneAuditObservation> run_zone_audit_with(
      const std::vector<FaultEvent>& faults, size_t clean_samples,
      size_t workers) const;

  CampaignConfig config_;
  obs::Obs obs_;
  rss::RootCatalog catalog_;
  std::unique_ptr<rss::ZoneAuthority> authority_;
  netsim::Topology topology_;
  std::unique_ptr<netsim::AnycastRouter> router_;
  std::vector<VantagePoint> vps_;
  Schedule schedule_;
  std::unique_ptr<Prober> prober_;
  std::vector<FaultEvent> faults_;
};

}  // namespace rootsim::measure
