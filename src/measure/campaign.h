// Campaign assembly: wires catalog + zone authority + topology + router +
// vantage points + schedule + fault plan into one reproducible experiment.
//
// Everything downstream (the analysis module, the bench harnesses, the
// examples) starts from a Campaign. A campaign is a pure function of its
// config; the default config is the paper's setup.
#pragma once

#include <memory>

#include "measure/faults.h"
#include "measure/prober.h"
#include "measure/schedule.h"
#include "measure/vantage.h"
#include "netsim/routing.h"
#include "obs/obs.h"
#include "rss/catalog.h"
#include "rss/zone_authority.h"

namespace rootsim::measure {

struct CampaignConfig {
  uint64_t seed = 42;
  netsim::TopologyConfig topology;
  netsim::RouterConfig router;
  VantageSetConfig vantage;
  ScheduleConfig schedule;
  rss::ZoneAuthorityConfig zone;
  /// Link conditions and retry policy of the simulated transport every
  /// client↔server exchange rides (defaults: clean, loss-free paths).
  netsim::TransportConfig transport;
  /// Scale factor < 1 shrinks the VP set for fast tests (keeps proportions).
  double vp_scale = 1.0;
};

/// One observation in the ZONEMD audit dataset (paper §7 / Table 2).
struct ZoneAuditObservation {
  uint32_t vp_id = 0;
  int table2_vp_id = 0;  // 0 = not a planned fault (clean sample)
  int root_index = -1;
  util::IpFamily family = util::IpFamily::V4;
  bool old_b_address = false;
  util::UnixTime when = 0;
  uint32_t soa_serial = 0;
  dnssec::ValidationStatus verdict = dnssec::ValidationStatus::Valid;
  dnssec::ZonemdStatus zonemd = dnssec::ZonemdStatus::NoZonemd;
  /// A VP-wide fault (bad clock) affects every server of the round; Table 2
  /// prints such rows with server = "all".
  bool affects_all_servers = false;
  std::string note;
};

class Campaign {
 public:
  /// `obs` (optional) is the observability sink threaded through every layer
  /// the campaign builds — zone authority, router, prober and the audit
  /// loop. The default null sink leaves all instrumentation disabled, so a
  /// Campaign stays a pure function of its config.
  explicit Campaign(CampaignConfig config = {}, obs::Obs obs = {});

  const CampaignConfig& config() const { return config_; }
  const obs::Obs& obs() const { return obs_; }
  const rss::RootCatalog& catalog() const { return catalog_; }
  const rss::ZoneAuthority& authority() const { return *authority_; }
  const netsim::Topology& topology() const { return topology_; }
  const netsim::AnycastRouter& router() const { return *router_; }
  const std::vector<VantagePoint>& vantage_points() const { return vps_; }
  const Schedule& schedule() const { return schedule_; }
  const Prober& prober() const { return *prober_; }
  /// The simulated transport the campaign's prober sends everything through.
  const netsim::Transport& transport() const { return prober_->transport(); }
  const std::vector<FaultEvent>& fault_plan() const { return faults_; }

  /// Runs the ZONEMD audit: executes every planned fault event as a full
  /// AXFR + validation, plus `clean_samples` healthy transfers spread over
  /// the campaign (sampling the 75M-transfer corpus the paper validated).
  ///
  /// `workers` fans the (fault event + clean sample) units out over the exec
  /// engine (0 = ROOTSIM_WORKERS env var, else serial). Every unit draws its
  /// RNG by forking the campaign seed by unit index and records into a
  /// per-worker obs shard merged in unit order, so the observation vector
  /// AND the metric/trace exports are byte-identical for any worker count.
  std::vector<ZoneAuditObservation> run_zone_audit(size_t clean_samples = 200,
                                                   size_t workers = 0) const;

 private:
  CampaignConfig config_;
  obs::Obs obs_;
  rss::RootCatalog catalog_;
  std::unique_ptr<rss::ZoneAuthority> authority_;
  netsim::Topology topology_;
  std::unique_ptr<netsim::AnycastRouter> router_;
  std::vector<VantagePoint> vps_;
  Schedule schedule_;
  std::unique_ptr<Prober> prober_;
  std::vector<FaultEvent> faults_;
};

}  // namespace rootsim::measure
