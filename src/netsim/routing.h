// Anycast route selection, RTT model, route churn and traceroute synthesis.
//
// For every (vantage point, root, family) the router picks a catchment site:
//   1. candidate set = all global sites + local sites whose facility is in
//      the VP's connectivity set (NO_EXPORT semantics, §2);
//   2. candidates are ranked by a BGP-proxy cost (geographic distance with a
//      per-VP/per-candidate policy perturbation — BGP does not pick the
//      geographically closest site, which is exactly the route inflation the
//      paper measures in Fig. 5);
//   3. detour rules (address-family-specific transit, §6) may override the
//      selection for a fraction of VPs, changing RTT and the last-hop AS;
//   4. a calibrated churn process flips the selection between the top
//      candidates over time, producing the site-change counts of Fig. 3.
//
// RTTs come from fiber distance (~10ms per 1,000 km, §6) plus access/jitter
// terms, or from the detour rule's calibrated distribution.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "netsim/topology.h"
#include "obs/obs.h"
#include "util/geo.h"
#include "util/ip.h"
#include "util/rng.h"

namespace rootsim::netsim {

/// A client endpoint as the routing layer sees it.
struct VantageView {
  uint32_t vp_id = 0;
  util::Region region = util::Region::Europe;
  util::GeoPoint location;
  AsId asn = 0;
  /// Facilities this VP's AS is present at (grants visibility of local sites).
  std::vector<FacilityId> connectivity;
  /// Per-VP churn multiplier (lognormal, median 1) — the long tail of Fig. 3.
  double churn_multiplier = 1.0;
};

/// Identity of a last-hop router, as traceroute would fingerprint it. Equal
/// ids across two roots' traceroutes mean shared last-hop infrastructure.
using RouterId = uint64_t;

struct RouteResult {
  uint32_t site_id = 0;
  double rtt_ms = 0;
  bool via_detour = false;
  AsId detour_as = 0;
  /// Second-to-last traceroute hop; 0 when the hop did not answer (analysis
  /// must then treat it as unique — the paper's lower-bound rule, §5).
  RouterId second_to_last_hop = 0;
  /// Full synthesized hop list (first = VP gateway, last = the site itself).
  std::vector<RouterId> hops;
};

/// Per-root, per-family churn calibration: expected number of site changes a
/// median VP records over the whole campaign (paper §4.2: b.root 8/8,
/// g.root 36 on IPv4 / 64 on IPv6, ...).
struct ChurnSpec {
  double median_changes_v4 = 8;
  double median_changes_v6 = 8;
  bool operator==(const ChurnSpec&) const = default;
};

struct RouterConfig {
  uint64_t seed = 42;
  /// Total measurement rounds in the campaign (sets per-round flip rates).
  uint64_t campaign_rounds = 10272;
  /// Probability that traceroute misses the second-to-last hop.
  double hop_loss_probability = 0.05;
  /// Probability that a root instance at a facility has its own (unshared)
  /// last-hop router, per family. Lower = more observed co-location.
  double dedicated_router_prob_v4 = 0.62;
  double dedicated_router_prob_v6 = 0.66;
  /// Fraction of facilities whose peering fabric funnels every hosted root
  /// through one router (the clustered mega-IXP case: VPs there can observe
  /// up to 12 co-located roots).
  double shared_fabric_fraction = 0.12;
  /// BGP-vs-geography noise: stddev of the multiplicative cost perturbation.
  double policy_noise_sigma = 0.7;
  /// Per-root churn calibration, indexed 0..12.
  std::array<ChurnSpec, 13> churn{};
};

class AnycastRouter {
 public:
  /// `obs` (optional) records route selections, site flips and per-round
  /// churn events; the default null sink adds one dead branch per call.
  AnycastRouter(const Topology& topology, RouterConfig config,
                obs::Obs obs = {});

  /// Steady-state selection (no churn): the site this VP's routes settle on.
  RouteResult route(const VantageView& vp, uint32_t root_index,
                    util::IpFamily family) const;

  /// Selection at a specific measurement round; flips between the top
  /// candidates per the churn process. round in [0, campaign_rounds).
  RouteResult route_at(const VantageView& vp, uint32_t root_index,
                       util::IpFamily family, uint64_t round) const;

  /// Precomputed candidate state for tight per-round loops (the stability
  /// analysis calls this ~180M times; recomputing candidates would dominate).
  struct Selection {
    uint32_t primary_site = 0;
    uint32_t secondary_site = 0;
    double flip_probability = 0;
    uint64_t flip_stream = 0;  // hash stream key for per-round decisions
  };
  Selection prepare_selection(const VantageView& vp, uint32_t root_index,
                              util::IpFamily family) const;
  /// The site chosen at `round` given a prepared selection. O(1).
  static uint32_t site_at_round(const Selection& selection, uint64_t round);

  /// Geographically closest *global* site of a root to this VP (the Fig. 5
  /// reference point).
  const AnycastSite& closest_global_site(const VantageView& vp,
                                         uint32_t root_index) const;

  /// Control-plane view (the data the paper's Appendix E wishes it had
  /// collected): the routes for this root's prefix as visible in the VP's
  /// BGP table — every reachable site with its path cost and a synthetic
  /// AS path. Entry 0 is the best path (= what route() selects, absent a
  /// detour override).
  struct AnnouncedRoute {
    uint32_t site_id = 0;
    double path_cost = 0;
    std::vector<AsId> as_path;  // VP's AS first, origin last
  };
  std::vector<AnnouncedRoute> announced_routes(const VantageView& vp,
                                               uint32_t root_index,
                                               util::IpFamily family,
                                               size_t max_routes = 8) const;

  /// Distance in km from VP to a site.
  double distance_km(const VantageView& vp, uint32_t site_id) const;

  const Topology& topology() const { return *topology_; }
  const RouterConfig& config() const { return config_; }

 private:
  struct Candidates {
    uint32_t primary = 0;    // site id
    uint32_t secondary = 0;  // flip target (== primary if only one candidate)
    double primary_rtt = 0;
    double secondary_rtt = 0;
    bool via_detour = false;
    AsId detour_as = 0;
  };
  Candidates candidates_for(const VantageView& vp, uint32_t root_index,
                            util::IpFamily family) const;
  RouteResult finish(const VantageView& vp, uint32_t root_index,
                     util::IpFamily family, const Candidates& c,
                     bool use_secondary) const;
  double flip_probability(const VantageView& vp, uint32_t root_index,
                          util::IpFamily family) const;

  const Topology* topology_;
  RouterConfig config_;
  uint64_t seed_mix_;
  // Pre-resolved metric handles, indexed by family (0 = v4, 1 = v6); null
  // when no sink is attached.
  std::array<obs::Counter*, 2> selections_{};
  std::array<obs::Counter*, 2> site_flips_{};
  std::array<obs::Counter*, 2> churn_events_{};
};

/// Default churn calibration reproducing the paper's §4.2 observations.
std::array<ChurnSpec, 13> default_churn_specs();

}  // namespace rootsim::netsim
