// Transport flight recorder: a bounded ring of recent exchanges.
//
// When a probe fails in a large campaign, the aggregate counters say *that*
// exchanges timed out but not *which* ones or *why*. The flight recorder
// keeps the last N exchanges — path coordinates, cause code, attempt/drop
// counts, byte and time cost — so a failed query can be post-mortemed from
// the ring dump (rootdig does exactly that on failure).
//
// Attach one by pointing TransportConfig::flight_recorder at it; the
// transport records every exchange() / axfr() completion. With no recorder
// attached the transport pays one null-pointer branch per exchange.
//
// Concurrency: the owner ring is mutex-protected for ad-hoc sharing, but
// parallel workers should each write a per-worker Shard (make_shards) —
// single-writer rings with no lock at all, so the recorder stays enabled in
// scaling benches without serializing workers on a mutex. Reads merge the
// owner ring and every shard ordered by simulated send time. Either way the
// recorder is a *diagnostic* surface — buffered order reflects scheduling
// and never feeds the deterministic exports (metrics/trace/rssac002 stay
// byte-identical with or without it); only the recorded() total is
// scheduling-independent.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/ip.h"
#include "util/timeutil.h"

namespace rootsim::netsim {

/// One completed exchange as the transport saw it.
struct FlightRecord {
  enum class Op : uint8_t { Query, Axfr };
  /// Why the exchange ended the way it did.
  enum class Cause : uint8_t {
    Ok,          ///< final response delivered
    Timeout,     ///< every retry budget exhausted (UDP or TCP connect)
    TcpRefused,  ///< needed TCP, path refuses it (truncated answer is final)
    Refused,     ///< server-side refusal (AXFR disabled)
  };

  // Path coordinates (which conversation this was).
  uint32_t vp_id = 0;
  int root_index = -1;
  util::IpFamily family = util::IpFamily::V4;
  uint64_t round = 0;
  uint32_t site_id = 0;

  Op op = Op::Query;
  Cause cause = Cause::Ok;
  /// The UDP answer came back TC=1 — the exchange moved to TCP, unless the
  /// path refuses TCP (cause tcp-refused), in which case the truncated
  /// answer was final.
  bool truncated_retry = false;

  uint32_t udp_attempts = 0;
  uint32_t tcp_attempts = 0;
  uint32_t drops = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  double time_ms = 0;  ///< simulated time the exchange cost

  std::string qname;  ///< first question ("." for root); empty for AXFR
  uint16_t qtype = 0;
  util::UnixTime when = 0;  ///< simulated send time
};

std::string_view to_string(FlightRecord::Cause cause);

/// Order-insensitive per-(root, family, cause) rollup of *every* record ever
/// recorded — counts and first/last simulated send times. Unlike the ring,
/// nothing is ever evicted, and count/min/max don't care which shard saw
/// which exchange, so the rollup is identical under any worker count or
/// steal schedule. This is the recorder surface the SLO plane's cause
/// attribution is allowed to read (the buffered ring is not: its eviction
/// order reflects scheduling).
struct FlightFailureSummary {
  struct Entry {
    int root_index = 0;
    bool v6 = false;
    FlightRecord::Cause cause = FlightRecord::Cause::Timeout;
    uint64_t count = 0;
    util::UnixTime first = 0;  ///< earliest simulated send time
    util::UnixTime last = 0;   ///< latest simulated send time
  };
  /// Non-Ok entries with count > 0, ordered by (root, family, cause).
  std::vector<Entry> entries;
};

/// Thread-safe bounded ring of FlightRecords, oldest evicted first.
class FlightRecorder {
 public:
  static constexpr size_t kSummaryRoots = 13;
  static constexpr size_t kSummaryCauses = 4;
  struct SummaryCell {
    uint64_t count = 0;
    util::UnixTime first = 0;
    util::UnixTime last = 0;
  };
  using SummaryCells =
      std::array<SummaryCell, kSummaryRoots * 2 * kSummaryCauses>;

  /// One worker's lock-free view of the recorder. record() touches only this
  /// shard's own bounded ring — no mutex, single writer by construction.
  /// The parent folds shard contents into every read API.
  class Shard {
   public:
    void record(FlightRecord record);

   private:
    friend class FlightRecorder;
    explicit Shard(size_t capacity) : capacity_(capacity) {}
    size_t capacity_;
    uint64_t recorded_ = 0;
    std::deque<FlightRecord> ring_;
    SummaryCells summary_{};
  };

  explicit FlightRecorder(size_t capacity = 256);

  void record(FlightRecord record);

  /// Creates `count` per-worker shards and returns their pointers (owned by
  /// the recorder, valid until clear()). Each call appends fresh shards;
  /// earlier shards keep contributing to reads. Reading while a worker is
  /// still writing its shard is a race — merge after the parallel region
  /// (thread join gives the happens-before edge).
  std::vector<Shard*> make_shards(size_t count);

  size_t capacity() const { return capacity_; }
  size_t size() const;
  /// Total records ever recorded, including evicted ones, across the owner
  /// ring and all shards. Scheduling-independent.
  uint64_t recorded() const;
  /// Records evicted by the ring bounds (recorded minus buffered).
  uint64_t dropped() const;

  /// The deterministic failure rollup (see FlightFailureSummary). Folds the
  /// owner's cells with every shard's; safe to read after the parallel
  /// region joins. Records with root_index outside [0, kSummaryRoots)
  /// (priming, local-root refresh) are not rolled up.
  FlightFailureSummary failure_summary() const;

  /// Merged copy of the buffered records, ordered by simulated send time
  /// (ties keep owner-then-shard order), truncated to the newest `capacity`.
  std::vector<FlightRecord> records() const;

  /// One JSON object per buffered record, oldest first:
  ///   {"op":"query","cause":"timeout","vp":12,"root":1,"family":"v4",
  ///    "round":9980,"site":33,"qname":".","qtype":"SOA","t":1694593200,
  ///    "udp_attempts":3,"tcp_attempts":0,"drops":3,"bytes_sent":132,
  ///    "bytes_received":0,"time_ms":10500.0}
  std::string to_jsonl() const;

  /// Drops all buffered records and all shards (their pointers die here).
  /// Not safe while workers are still recording.
  void clear();

 private:
  static void note_summary(SummaryCells& cells, const FlightRecord& record);

  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t recorded_ = 0;
  std::deque<FlightRecord> ring_;
  std::deque<Shard> shards_;
  SummaryCells summary_{};
};

}  // namespace rootsim::netsim
