#include "netsim/transport.h"

#include "util/strings.h"

namespace rootsim::netsim {

std::string_view to_string(TransportProto proto) {
  return proto == TransportProto::Udp ? "udp" : "tcp";
}

Transport::Transport(const AnycastRouter& router, TransportConfig config,
                     obs::Obs obs)
    : router_(&router), config_(std::move(config)), obs_(obs) {
  if (obs_.metrics) {
    exchanges_[0] = obs_.counter_handle("transport.exchanges", {{"proto", "udp"}});
    exchanges_[1] = obs_.counter_handle("transport.exchanges", {{"proto", "tcp"}});
    drops_ = obs_.counter_handle("transport.drops");
    timeouts_ = obs_.counter_handle("transport.timeouts");
    tcp_fallbacks_ = obs_.counter_handle("transport.tcp_fallbacks");
    bytes_sent_ = obs_.counter_handle("transport.bytes", {{"dir", "sent"}});
    bytes_received_ = obs_.counter_handle("transport.bytes", {{"dir", "received"}});
  }
}

Transport::Path Transport::open_path(const VantageView& client,
                                     uint32_t root_index, util::IpFamily family,
                                     uint64_t round) const {
  Path path;
  path.route_ = router_->route_at(client, root_index, family, round);
  path.conditions_ = config_.conditions_for_site(path.route_.site_id);
  // The path's private loss/jitter stream: a pure function of the path
  // coordinates and the transport seed, so a probe's outcomes never depend
  // on which worker ran it or what ran before it.
  path.rng_ = util::Rng(config_.seed).fork(util::format(
      "transport/%u/%u/%d/%llu", client.vp_id, root_index,
      family == util::IpFamily::V4 ? 4 : 6,
      static_cast<unsigned long long>(round)));
  return path;
}

double Transport::round_trip_ms(Path& path) const {
  double rtt = path.route_.rtt_ms + path.conditions_.extra_rtt_ms;
  if (path.conditions_.jitter_ms > 0)
    rtt += path.rng_.uniform_real(0.0, path.conditions_.jitter_ms);
  return rtt;
}

bool Transport::dropped(Path& path) const {
  // Loss-free paths never touch the RNG: the default transport is exactly
  // transparent, draw for draw, to the pre-transport code.
  return path.conditions_.loss > 0 && path.rng_.chance(path.conditions_.loss);
}

void Transport::note_exchange(TransportProto proto) const {
  obs::inc(exchanges_[proto == TransportProto::Udp ? 0 : 1]);
}

bool Transport::tcp_connect(Path& path, TransportStats& stats) const {
  double timeout = config_.tcp_connect_timeout_ms;
  for (int attempt = 0; attempt < config_.tcp_max_attempts; ++attempt) {
    ++stats.tcp_attempts;
    // One loss draw stands for the handshake exchange: a lost SYN (or
    // SYN-ACK) burns the whole connect timeout.
    if (dropped(path)) {
      ++stats.drops;
      obs::inc(drops_);
      stats.time_ms += timeout;
      timeout *= config_.retry_backoff;
      continue;
    }
    stats.time_ms += config_.tcp_handshake_rtts * round_trip_ms(path);
    return true;
  }
  return false;
}

ExchangeOutcome Transport::exchange(Path& path, const Endpoint& endpoint,
                                    const dns::Message& query,
                                    util::UnixTime now) const {
  ExchangeOutcome outcome = exchange_impl(path, endpoint, query, now);
  if (obs_.metrics) {
    obs::inc(bytes_sent_, outcome.stats.bytes_sent);
    obs::inc(bytes_received_, outcome.stats.bytes_received);
  }
  return outcome;
}

ExchangeOutcome Transport::exchange_impl(Path& path, const Endpoint& endpoint,
                                         const dns::Message& query,
                                         util::UnixTime now) const {
  ExchangeOutcome outcome;
  // Client-side encode; what cannot be serialized cannot be sent.
  query.encode_into(path.wire_);
  auto parsed_query = dns::Message::decode(path.wire_.data());
  if (!parsed_query) {
    outcome.timed_out = true;
    ++outcome.stats.timeouts;
    obs::inc(timeouts_);
    return outcome;
  }
  const uint64_t query_bytes = path.wire_.size();

  // UDP phase: dig-like try/retry schedule with per-attempt timeout budget.
  double timeout = config_.udp_timeout_ms;
  std::optional<dns::Message> response;
  for (int attempt = 0; attempt < config_.udp_max_attempts; ++attempt) {
    ++outcome.stats.udp_attempts;
    outcome.stats.bytes_sent += query_bytes;
    if (dropped(path)) {  // query datagram lost
      ++outcome.stats.drops;
      obs::inc(drops_);
      outcome.stats.time_ms += timeout;
      timeout *= config_.retry_backoff;
      continue;
    }
    dns::Message udp_answer =
        endpoint.udp_response(*parsed_query, now, path.conditions_.path_mtu);
    udp_answer.encode_into(path.wire_);
    if (dropped(path)) {  // response datagram lost (the server still worked)
      ++outcome.stats.drops;
      obs::inc(drops_);
      outcome.stats.time_ms += timeout;
      timeout *= config_.retry_backoff;
      continue;
    }
    outcome.stats.bytes_received += path.wire_.size();
    outcome.stats.time_ms += round_trip_ms(path);
    response = dns::Message::decode(path.wire_.data());
    break;
  }
  if (!response) {
    // Either every datagram was lost or the response wire image failed to
    // parse — to the client both are a dead server.
    outcome.timed_out = true;
    ++outcome.stats.timeouts;
    obs::inc(timeouts_);
    return outcome;
  }
  note_exchange(TransportProto::Udp);
  if (!response->tc) {
    outcome.delivered = true;
    outcome.response = std::move(*response);
    return outcome;
  }

  // TC=1: retry over TCP — the dig default — unless the path refuses it, in
  // which case the truncated answer is all the client will ever get.
  if (path.conditions_.tcp_refused) {
    outcome.delivered = true;
    outcome.tcp_refused = true;
    outcome.response = std::move(*response);
    return outcome;
  }
  if (!tcp_connect(path, outcome.stats)) {
    outcome.timed_out = true;
    ++outcome.stats.timeouts;
    obs::inc(timeouts_);
    return outcome;
  }
  outcome.stats.bytes_sent += query_bytes + 2;  // RFC 1035 §4.2.2 length prefix
  dns::Message tcp_answer = endpoint.tcp_response(*parsed_query, now);
  tcp_answer.encode_into(path.wire_);
  outcome.stats.bytes_received += path.wire_.size() + 2;
  outcome.stats.time_ms += round_trip_ms(path);
  response = dns::Message::decode(path.wire_.data());
  if (!response) {
    outcome.timed_out = true;
    ++outcome.stats.timeouts;
    obs::inc(timeouts_);
    return outcome;
  }
  note_exchange(TransportProto::Tcp);
  obs::inc(tcp_fallbacks_);
  outcome.delivered = true;
  outcome.retried_over_tcp = true;
  ++outcome.stats.tcp_fallbacks;
  outcome.transport = TransportProto::Tcp;
  outcome.response = std::move(*response);
  return outcome;
}

AxfrOutcome Transport::axfr(Path& path, const Endpoint& endpoint,
                            util::UnixTime now) const {
  AxfrOutcome outcome;
  if (path.conditions_.tcp_refused) {
    outcome.tcp_refused = true;
    return outcome;
  }
  if (!tcp_connect(path, outcome.stats)) {
    outcome.timed_out = true;
    ++outcome.stats.timeouts;
    obs::inc(timeouts_);
    return outcome;
  }
  // The AXFR request is one small framed query message.
  outcome.stats.bytes_sent += 64;
  std::span<const uint8_t> stream = endpoint.axfr_stream(now);
  if (stream.empty()) {
    // Server-side refusal; the connection itself worked.
    obs::inc(bytes_sent_, outcome.stats.bytes_sent);
    return outcome;
  }
  outcome.delivered = true;
  outcome.stream = stream;
  outcome.stats.bytes_received += stream.size();
  // Window-paced transfer: one RTT per in-flight window of the stream.
  const size_t window = std::max<size_t>(1, config_.tcp_window_bytes);
  const double windows =
      static_cast<double>((stream.size() + window - 1) / window);
  outcome.stats.time_ms += windows * round_trip_ms(path);
  note_exchange(TransportProto::Tcp);
  if (obs_.metrics) {
    obs::inc(bytes_sent_, outcome.stats.bytes_sent);
    obs::inc(bytes_received_, outcome.stats.bytes_received);
  }
  return outcome;
}

}  // namespace rootsim::netsim
