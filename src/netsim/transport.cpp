#include "netsim/transport.h"

#include <algorithm>

#include "netsim/flight_recorder.h"
#include "util/strings.h"

namespace rootsim::netsim {

std::string_view to_string(TransportProto proto) {
  return proto == TransportProto::Udp ? "udp" : "tcp";
}

Transport::Transport(const AnycastRouter& router, TransportConfig config,
                     obs::Obs obs)
    : router_(&router), config_(std::move(config)) {
  rebind_obs(obs);
}

void Transport::rebind_obs(obs::Obs obs) {
  obs_ = obs;
  if (obs_.metrics) {
    exchanges_[0] = obs_.counter_handle("transport.exchanges", {{"proto", "udp"}});
    exchanges_[1] = obs_.counter_handle("transport.exchanges", {{"proto", "tcp"}});
    drops_ = obs_.counter_handle("transport.drops");
    timeouts_ = obs_.counter_handle("transport.timeouts");
    tcp_fallbacks_ = obs_.counter_handle("transport.tcp_fallbacks");
    bytes_sent_ = obs_.counter_handle("transport.bytes", {{"dir", "sent"}});
    bytes_received_ = obs_.counter_handle("transport.bytes", {{"dir", "received"}});
  } else {
    exchanges_[0] = exchanges_[1] = nullptr;
    drops_ = timeouts_ = tcp_fallbacks_ = nullptr;
    bytes_sent_ = bytes_received_ = nullptr;
  }
}

Transport::Path Transport::open_path(const VantageView& client,
                                     uint32_t root_index, util::IpFamily family,
                                     uint64_t round) const {
  Path path;
  path.route_ = router_->route_at(client, root_index, family, round);
  path.conditions_ = config_.conditions_for_site(path.route_.site_id);
  path.vp_id_ = client.vp_id;
  path.root_index_ = root_index;
  path.family_ = family;
  path.round_ = round;
  // The path's private loss/jitter stream: a pure function of the path
  // coordinates and the transport seed, so a probe's outcomes never depend
  // on which worker ran it or what ran before it.
  path.rng_ = util::Rng(config_.seed).fork(util::format(
      "transport/%u/%u/%d/%llu", client.vp_id, root_index,
      family == util::IpFamily::V4 ? 4 : 6,
      static_cast<unsigned long long>(round)));
  return path;
}

LinkConditions Transport::conditions_at(uint32_t site_id, int root_index,
                                        util::UnixTime when) const {
  LinkConditions conditions = config_.conditions_for_site(site_id);
  for (const ConditionWindow& window : config_.condition_windows) {
    if (window.root_index >= 0 && window.root_index != root_index) continue;
    if (when < window.start || when >= window.end) continue;
    conditions.loss = std::min(1.0, conditions.loss + window.add.loss);
    conditions.jitter_ms += window.add.jitter_ms;
    conditions.extra_rtt_ms += window.add.extra_rtt_ms;
    if (window.add.path_mtu > 0)
      conditions.path_mtu = conditions.path_mtu == 0
                                ? window.add.path_mtu
                                : std::min(conditions.path_mtu,
                                           window.add.path_mtu);
    conditions.tcp_refused = conditions.tcp_refused || window.add.tcp_refused;
  }
  return conditions;
}

double Transport::round_trip_ms(Path& path) const {
  double rtt = path.route_.rtt_ms + path.conditions_.extra_rtt_ms;
  if (path.conditions_.jitter_ms > 0)
    rtt += path.rng_.uniform_real(0.0, path.conditions_.jitter_ms);
  return rtt;
}

bool Transport::dropped(Path& path) const {
  // Loss-free paths never touch the RNG: the default transport is exactly
  // transparent, draw for draw, to the pre-transport code.
  return path.conditions_.loss > 0 && path.rng_.chance(path.conditions_.loss);
}

void Transport::note_exchange(TransportProto proto) const {
  obs::inc(exchanges_[proto == TransportProto::Udp ? 0 : 1]);
}

bool Transport::tcp_connect(Path& path, TransportStats& stats) const {
  double timeout = config_.tcp_connect_timeout_ms;
  for (int attempt = 0; attempt < config_.tcp_max_attempts; ++attempt) {
    ++stats.tcp_attempts;
    // One loss draw stands for the handshake exchange: a lost SYN (or
    // SYN-ACK) burns the whole connect timeout.
    if (dropped(path)) {
      ++stats.drops;
      obs::inc(drops_);
      stats.time_ms += timeout;
      timeout *= config_.retry_backoff;
      continue;
    }
    stats.time_ms += config_.tcp_handshake_rtts * round_trip_ms(path);
    return true;
  }
  return false;
}

ExchangeOutcome Transport::exchange(Path& path, const Endpoint& endpoint,
                                    const dns::Message& query,
                                    util::UnixTime now) const {
  // Scenario condition windows are resolved against the exchange instant,
  // recomputed from the config's base each time (idempotent: re-using a
  // path across instants never stacks an overlay twice).
  if (!config_.condition_windows.empty())
    path.conditions_ = conditions_at(path.site_id(),
                                     static_cast<int>(path.root_index_), now);
  ExchangeOutcome outcome = exchange_impl(path, endpoint, query, now);
  if (obs_.metrics) {
    obs::inc(bytes_sent_, outcome.stats.bytes_sent);
    obs::inc(bytes_received_, outcome.stats.bytes_received);
  }
  if (obs_.rssac002 &&
      (outcome.udp_queries_served || outcome.tcp_queries_served)) {
    // Server-side accounting: only exchanges the server actually saw count
    // (a query datagram lost on the way never reached it).
    ExchangeTelemetry telemetry;
    telemetry.v6 = path.family_ == util::IpFamily::V6;
    telemetry.source_id = path.vp_id_;
    telemetry.when = now;
    telemetry.udp_queries = outcome.udp_queries_served;
    telemetry.tcp_queries = outcome.tcp_queries_served;
    telemetry.delivered = outcome.delivered;
    telemetry.final_tcp = outcome.transport == TransportProto::Tcp;
    telemetry.rcode =
        outcome.delivered ? static_cast<uint16_t>(outcome.response.rcode) : 0;
    telemetry.truncated = outcome.truncated;
    dns::WireWriter wire;
    query.encode_into(wire);
    telemetry.query_bytes = wire.size();
    // After a delivered exchange the path's wire buffer still holds the
    // final response image.
    telemetry.response_bytes = outcome.delivered ? path.wire_.size() : 0;
    endpoint.note_exchange(telemetry);
  }
  if (config_.flight_shard || config_.flight_recorder) {
    FlightRecord record;
    record.op = FlightRecord::Op::Query;
    record.cause = outcome.timed_out    ? FlightRecord::Cause::Timeout
                   : outcome.tcp_refused ? FlightRecord::Cause::TcpRefused
                                         : FlightRecord::Cause::Ok;
    record.vp_id = path.vp_id_;
    record.root_index = static_cast<int>(path.root_index_);
    record.family = path.family_;
    record.round = path.round_;
    record.site_id = path.site_id();
    record.truncated_retry = outcome.truncated;
    record.udp_attempts = outcome.stats.udp_attempts;
    record.tcp_attempts = outcome.stats.tcp_attempts;
    record.drops = outcome.stats.drops;
    record.bytes_sent = outcome.stats.bytes_sent;
    record.bytes_received = outcome.stats.bytes_received;
    record.time_ms = outcome.stats.time_ms;
    if (!query.questions.empty()) {
      record.qname = query.questions[0].qname.to_string();
      record.qtype = static_cast<uint16_t>(query.questions[0].qtype);
    }
    record.when = now;
    if (config_.flight_shard)
      config_.flight_shard->record(std::move(record));
    else
      config_.flight_recorder->record(std::move(record));
  }
  return outcome;
}

ExchangeOutcome Transport::exchange_impl(Path& path, const Endpoint& endpoint,
                                         const dns::Message& query,
                                         util::UnixTime now) const {
  ExchangeOutcome outcome;
  // Client-side encode; what cannot be serialized cannot be sent.
  query.encode_into(path.wire_);
  auto parsed_query = dns::Message::decode(path.wire_.data());
  if (!parsed_query) {
    outcome.timed_out = true;
    ++outcome.stats.timeouts;
    obs::inc(timeouts_);
    return outcome;
  }
  const uint64_t query_bytes = path.wire_.size();

  // UDP phase: dig-like try/retry schedule with per-attempt timeout budget.
  double timeout = config_.udp_timeout_ms;
  std::optional<dns::Message> response;
  for (int attempt = 0; attempt < config_.udp_max_attempts; ++attempt) {
    ++outcome.stats.udp_attempts;
    outcome.stats.bytes_sent += query_bytes;
    if (dropped(path)) {  // query datagram lost
      ++outcome.stats.drops;
      obs::inc(drops_);
      outcome.stats.time_ms += timeout;
      timeout *= config_.retry_backoff;
      continue;
    }
    dns::Message udp_answer =
        endpoint.udp_response(*parsed_query, now, path.conditions_.path_mtu);
    ++outcome.udp_queries_served;  // the query reached the server
    if (udp_answer.tc) outcome.truncated = true;
    udp_answer.encode_into(path.wire_);
    if (dropped(path)) {  // response datagram lost (the server still worked)
      ++outcome.stats.drops;
      obs::inc(drops_);
      outcome.stats.time_ms += timeout;
      timeout *= config_.retry_backoff;
      continue;
    }
    outcome.stats.bytes_received += path.wire_.size();
    outcome.stats.time_ms += round_trip_ms(path);
    response = dns::Message::decode(path.wire_.data());
    break;
  }
  if (!response) {
    // Either every datagram was lost or the response wire image failed to
    // parse — to the client both are a dead server.
    outcome.timed_out = true;
    ++outcome.stats.timeouts;
    obs::inc(timeouts_);
    return outcome;
  }
  note_exchange(TransportProto::Udp);
  if (!response->tc) {
    outcome.delivered = true;
    outcome.response = std::move(*response);
    return outcome;
  }

  // TC=1: retry over TCP — the dig default — unless the path refuses it, in
  // which case the truncated answer is all the client will ever get.
  if (path.conditions_.tcp_refused) {
    outcome.delivered = true;
    outcome.tcp_refused = true;
    outcome.response = std::move(*response);
    return outcome;
  }
  if (!tcp_connect(path, outcome.stats)) {
    outcome.timed_out = true;
    ++outcome.stats.timeouts;
    obs::inc(timeouts_);
    return outcome;
  }
  outcome.stats.bytes_sent += query_bytes + 2;  // RFC 1035 §4.2.2 length prefix
  dns::Message tcp_answer = endpoint.tcp_response(*parsed_query, now);
  ++outcome.tcp_queries_served;
  tcp_answer.encode_into(path.wire_);
  outcome.stats.bytes_received += path.wire_.size() + 2;
  outcome.stats.time_ms += round_trip_ms(path);
  response = dns::Message::decode(path.wire_.data());
  if (!response) {
    outcome.timed_out = true;
    ++outcome.stats.timeouts;
    obs::inc(timeouts_);
    return outcome;
  }
  note_exchange(TransportProto::Tcp);
  obs::inc(tcp_fallbacks_);
  outcome.delivered = true;
  outcome.retried_over_tcp = true;
  ++outcome.stats.tcp_fallbacks;
  outcome.transport = TransportProto::Tcp;
  outcome.response = std::move(*response);
  return outcome;
}

AxfrOutcome Transport::axfr(Path& path, const Endpoint& endpoint,
                            util::UnixTime now) const {
  if (!config_.condition_windows.empty())
    path.conditions_ = conditions_at(path.site_id(),
                                     static_cast<int>(path.root_index_), now);
  AxfrOutcome outcome = axfr_impl(path, endpoint, now);
  if (obs_.rssac002 && !outcome.tcp_refused && !outcome.timed_out) {
    // The connection established, so the server saw the request — account
    // the transfer (or the refusal: one REFUSED response) per RSSAC002.
    ExchangeTelemetry telemetry;
    telemetry.v6 = path.family_ == util::IpFamily::V6;
    telemetry.source_id = path.vp_id_;
    telemetry.when = now;
    telemetry.tcp_queries = 1;
    telemetry.delivered = true;
    telemetry.final_tcp = true;
    telemetry.rcode = outcome.delivered
                          ? static_cast<uint16_t>(dns::Rcode::NoError)
                          : static_cast<uint16_t>(dns::Rcode::Refused);
    telemetry.axfr = true;
    telemetry.query_bytes = 64;
    telemetry.response_bytes =
        outcome.delivered ? outcome.stream.size() : uint64_t{64};
    endpoint.note_exchange(telemetry);
  }
  if (config_.flight_shard || config_.flight_recorder) {
    FlightRecord record;
    record.op = FlightRecord::Op::Axfr;
    record.cause = outcome.tcp_refused  ? FlightRecord::Cause::TcpRefused
                   : outcome.timed_out  ? FlightRecord::Cause::Timeout
                   : !outcome.delivered ? FlightRecord::Cause::Refused
                                        : FlightRecord::Cause::Ok;
    record.vp_id = path.vp_id_;
    record.root_index = static_cast<int>(path.root_index_);
    record.family = path.family_;
    record.round = path.round_;
    record.site_id = path.site_id();
    record.tcp_attempts = outcome.stats.tcp_attempts;
    record.drops = outcome.stats.drops;
    record.bytes_sent = outcome.stats.bytes_sent;
    record.bytes_received = outcome.stats.bytes_received;
    record.time_ms = outcome.stats.time_ms;
    record.when = now;
    if (config_.flight_shard)
      config_.flight_shard->record(std::move(record));
    else
      config_.flight_recorder->record(std::move(record));
  }
  return outcome;
}

AxfrOutcome Transport::axfr_impl(Path& path, const Endpoint& endpoint,
                                 util::UnixTime now) const {
  AxfrOutcome outcome;
  if (path.conditions_.tcp_refused) {
    outcome.tcp_refused = true;
    return outcome;
  }
  if (!tcp_connect(path, outcome.stats)) {
    outcome.timed_out = true;
    ++outcome.stats.timeouts;
    obs::inc(timeouts_);
    return outcome;
  }
  // The AXFR request is one small framed query message.
  outcome.stats.bytes_sent += 64;
  std::span<const uint8_t> stream = endpoint.axfr_stream(now);
  if (stream.empty()) {
    // Server-side refusal; the connection itself worked.
    obs::inc(bytes_sent_, outcome.stats.bytes_sent);
    return outcome;
  }
  outcome.delivered = true;
  outcome.stream = stream;
  outcome.stats.bytes_received += stream.size();
  // Window-paced transfer: one RTT per in-flight window of the stream.
  const size_t window = std::max<size_t>(1, config_.tcp_window_bytes);
  const double windows =
      static_cast<double>((stream.size() + window - 1) / window);
  outcome.stats.time_ms += windows * round_trip_ms(path);
  note_exchange(TransportProto::Tcp);
  if (obs_.metrics) {
    obs::inc(bytes_sent_, outcome.stats.bytes_sent);
    obs::inc(bytes_received_, outcome.stats.bytes_received);
  }
  return outcome;
}

}  // namespace rootsim::netsim
