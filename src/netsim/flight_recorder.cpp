#include "netsim/flight_recorder.h"

#include "dns/rdata.h"
#include "obs/metrics.h"  // json_escape
#include "util/strings.h"

namespace rootsim::netsim {

std::string_view to_string(FlightRecord::Cause cause) {
  switch (cause) {
    case FlightRecord::Cause::Ok: return "ok";
    case FlightRecord::Cause::Timeout: return "timeout";
    case FlightRecord::Cause::TcpRefused: return "tcp-refused";
    case FlightRecord::Cause::Refused: return "refused";
  }
  return "?";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity ? capacity : 1) {}

void FlightRecorder::record(FlightRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() >= capacity_) ring_.pop_front();
  ++recorded_;
  ring_.push_back(std::move(record));
}

size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ - ring_.size();
}

std::vector<FlightRecord> FlightRecorder::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  // recorded_ survives clear(): totals stay monotone per recorder.
}

std::string FlightRecorder::to_jsonl() const {
  std::string out;
  for (const FlightRecord& record : records()) {
    out += util::format(
        "{\"op\":\"%s\",\"cause\":\"%.*s\"",
        record.op == FlightRecord::Op::Axfr ? "axfr" : "query",
        static_cast<int>(to_string(record.cause).size()),
        to_string(record.cause).data());
    out += util::format(
        ",\"vp\":%u,\"root\":%d,\"family\":\"v%d\",\"round\":%llu,\"site\":%u",
        record.vp_id, record.root_index,
        record.family == util::IpFamily::V4 ? 4 : 6,
        static_cast<unsigned long long>(record.round), record.site_id);
    if (!record.qname.empty()) {
      out += ",\"qname\":\"" + obs::json_escape(record.qname) + "\"";
      out += ",\"qtype\":\"" +
             dns::rrtype_to_string(static_cast<dns::RRType>(record.qtype)) +
             "\"";
    }
    if (record.truncated_retry) out += ",\"truncated_retry\":true";
    out += util::format(
        ",\"t\":%lld,\"udp_attempts\":%u,\"tcp_attempts\":%u,\"drops\":%u",
        static_cast<long long>(record.when), record.udp_attempts,
        record.tcp_attempts, record.drops);
    out += util::format(
        ",\"bytes_sent\":%llu,\"bytes_received\":%llu,\"time_ms\":%.3f}\n",
        static_cast<unsigned long long>(record.bytes_sent),
        static_cast<unsigned long long>(record.bytes_received),
        record.time_ms);
  }
  return out;
}

}  // namespace rootsim::netsim
