#include "netsim/flight_recorder.h"

#include <algorithm>

#include "dns/rdata.h"
#include "obs/metrics.h"  // json_escape
#include "util/strings.h"

namespace rootsim::netsim {

std::string_view to_string(FlightRecord::Cause cause) {
  switch (cause) {
    case FlightRecord::Cause::Ok: return "ok";
    case FlightRecord::Cause::Timeout: return "timeout";
    case FlightRecord::Cause::TcpRefused: return "tcp-refused";
    case FlightRecord::Cause::Refused: return "refused";
  }
  return "?";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity ? capacity : 1) {}

void FlightRecorder::note_summary(SummaryCells& cells,
                                  const FlightRecord& record) {
  if (record.root_index < 0 ||
      record.root_index >= static_cast<int>(kSummaryRoots))
    return;
  const size_t family = record.family == util::IpFamily::V6 ? 1 : 0;
  SummaryCell& cell =
      cells[(static_cast<size_t>(record.root_index) * 2 + family) *
                kSummaryCauses +
            static_cast<size_t>(record.cause)];
  if (cell.count == 0 || record.when < cell.first) cell.first = record.when;
  if (cell.count == 0 || record.when > cell.last) cell.last = record.when;
  ++cell.count;
}

void FlightRecorder::Shard::record(FlightRecord record) {
  note_summary(summary_, record);
  if (ring_.size() >= capacity_) ring_.pop_front();
  ++recorded_;
  ring_.push_back(std::move(record));
}

void FlightRecorder::record(FlightRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  note_summary(summary_, record);
  if (ring_.size() >= capacity_) ring_.pop_front();
  ++recorded_;
  ring_.push_back(std::move(record));
}

std::vector<FlightRecorder::Shard*> FlightRecorder::make_shards(size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Shard*> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    shards_.emplace_back(Shard(capacity_));
    out.push_back(&shards_.back());
  }
  return out;
}

size_t FlightRecorder::size() const { return records().size(); }

uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = recorded_;
  for (const Shard& shard : shards_) total += shard.recorded_;
  return total;
}

uint64_t FlightRecorder::dropped() const { return recorded() - size(); }

FlightFailureSummary FlightRecorder::failure_summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Fold: counts add, first is a min, last is a max — all order-insensitive,
  // so the result is independent of which shard recorded what.
  SummaryCells folded = summary_;
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < folded.size(); ++i) {
      const SummaryCell& cell = shard.summary_[i];
      if (cell.count == 0) continue;
      if (folded[i].count == 0 || cell.first < folded[i].first)
        folded[i].first = cell.first;
      if (folded[i].count == 0 || cell.last > folded[i].last)
        folded[i].last = cell.last;
      folded[i].count += cell.count;
    }
  }
  FlightFailureSummary summary;
  for (size_t root = 0; root < kSummaryRoots; ++root) {
    for (size_t family = 0; family < 2; ++family) {
      for (size_t cause = 0; cause < kSummaryCauses; ++cause) {
        if (static_cast<FlightRecord::Cause>(cause) == FlightRecord::Cause::Ok)
          continue;
        const SummaryCell& cell =
            folded[(root * 2 + family) * kSummaryCauses + cause];
        if (cell.count == 0) continue;
        FlightFailureSummary::Entry entry;
        entry.root_index = static_cast<int>(root);
        entry.v6 = family == 1;
        entry.cause = static_cast<FlightRecord::Cause>(cause);
        entry.count = cell.count;
        entry.first = cell.first;
        entry.last = cell.last;
        summary.entries.push_back(entry);
      }
    }
  }
  return summary;
}

std::vector<FlightRecord> FlightRecorder::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightRecord> merged{ring_.begin(), ring_.end()};
  for (const Shard& shard : shards_)
    merged.insert(merged.end(), shard.ring_.begin(), shard.ring_.end());
  // Order by simulated send time (scheduling put them in arbitrary shards);
  // stable so owner-then-shard order breaks ties, then keep the newest
  // `capacity` like a single ring would have.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const FlightRecord& a, const FlightRecord& b) {
                     return a.when < b.when;
                   });
  if (merged.size() > capacity_)
    merged.erase(merged.begin(),
                 merged.begin() + static_cast<long>(merged.size() - capacity_));
  return merged;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  // recorded totals stay monotone per recorder across clear(): fold the
  // dying shards' counts into the owner before dropping them. The failure
  // summary keeps the same contract.
  for (const Shard& shard : shards_) {
    recorded_ += shard.recorded_;
    for (size_t i = 0; i < summary_.size(); ++i) {
      const SummaryCell& cell = shard.summary_[i];
      if (cell.count == 0) continue;
      if (summary_[i].count == 0 || cell.first < summary_[i].first)
        summary_[i].first = cell.first;
      if (summary_[i].count == 0 || cell.last > summary_[i].last)
        summary_[i].last = cell.last;
      summary_[i].count += cell.count;
    }
  }
  ring_.clear();
  shards_.clear();
}

std::string FlightRecorder::to_jsonl() const {
  std::string out;
  for (const FlightRecord& record : records()) {
    out += util::format(
        "{\"op\":\"%s\",\"cause\":\"%.*s\"",
        record.op == FlightRecord::Op::Axfr ? "axfr" : "query",
        static_cast<int>(to_string(record.cause).size()),
        to_string(record.cause).data());
    out += util::format(
        ",\"vp\":%u,\"root\":%d,\"family\":\"v%d\",\"round\":%llu,\"site\":%u",
        record.vp_id, record.root_index,
        record.family == util::IpFamily::V4 ? 4 : 6,
        static_cast<unsigned long long>(record.round), record.site_id);
    if (!record.qname.empty()) {
      out += ",\"qname\":\"" + obs::json_escape(record.qname) + "\"";
      out += ",\"qtype\":\"" +
             dns::rrtype_to_string(static_cast<dns::RRType>(record.qtype)) +
             "\"";
    }
    if (record.truncated_retry) out += ",\"truncated_retry\":true";
    out += util::format(
        ",\"t\":%lld,\"udp_attempts\":%u,\"tcp_attempts\":%u,\"drops\":%u",
        static_cast<long long>(record.when), record.udp_attempts,
        record.tcp_attempts, record.drops);
    out += util::format(
        ",\"bytes_sent\":%llu,\"bytes_received\":%llu,\"time_ms\":%.3f}\n",
        static_cast<unsigned long long>(record.bytes_sent),
        static_cast<unsigned long long>(record.bytes_received),
        record.time_ms);
  }
  return out;
}

}  // namespace rootsim::netsim
