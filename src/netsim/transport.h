// The simulated transport substrate every client↔server DNS exchange rides.
//
// The paper's measurement client talks to the root servers over a real,
// lossy network: UDP datagrams time out, big answers come back TC=1 and are
// retried over TCP, and every retry costs wall-clock time the analyses see
// as RTT. This layer reproduces that substrate for the simulation: one
// `exchange` API that
//
//   1. resolves the serving anycast site via the AnycastRouter (one route
//      per opened path, like a kernel route-cache entry),
//   2. encodes the query to wire bytes and delivers them — or drops them,
//      with deterministic seeded loss derived from per-link conditions,
//   3. enforces the UDP size limit (EDNS0 advertised buffer, clamped by the
//      path MTU) on the server side,
//   4. on TC=1 falls back to TCP, and on drops retries with backoff,
//      charging realistic simulated time: per-attempt timeout budget for
//      losses, SYN+RTT handshake for TCP, and a window-paced transfer time
//      for AXFR streams.
//
// Everything is a pure function of (config.seed, client, root, family,
// round): a path carries its own RNG forked from those coordinates, so
// outcomes are identical for any worker count or probe interleaving. With
// the default (loss-free, jitter-free) conditions the transport is exactly
// transparent: responses, routes and counters match a direct call into the
// server stack byte for byte.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dns/codec.h"
#include "dns/message.h"
#include "netsim/flight_recorder.h"
#include "netsim/routing.h"
#include "obs/obs.h"
#include "util/rng.h"
#include "util/timeutil.h"

namespace rootsim::netsim {

/// The protocol a response (finally) arrived over.
enum class TransportProto : uint8_t { Udp, Tcp };

std::string_view to_string(TransportProto proto);

/// Server-side summary of one exchange, handed to Endpoint::note_exchange
/// when an RSSAC002 collector is attached — everything the instance needs to
/// account the exchange the way a real root operator's telemetry pipeline
/// would (see obs/rssac002.h). Plain integers only; the endpoint translates.
struct ExchangeTelemetry {
  bool v6 = false;            ///< address family of the queried service address
  uint64_t source_id = 0;     ///< client identity (vp id)
  util::UnixTime when = 0;    ///< simulated send time
  uint32_t udp_queries = 0;   ///< datagram queries that reached the server
  uint32_t tcp_queries = 0;   ///< TCP queries that reached the server
  bool delivered = false;     ///< a final response reached the client
  bool final_tcp = false;     ///< that response went over TCP
  uint16_t rcode = 0;         ///< rcode of the final response
  bool truncated = false;     ///< the server sent a TC=1 answer
  bool axfr = false;          ///< the exchange was a zone transfer
  uint64_t query_bytes = 0;   ///< wire size of the query message
  uint64_t response_bytes = 0;  ///< wire size of the final response / stream
};

/// Conditions of one client↔site link. Defaults model the clean path the
/// seed campaign assumed; each knob is one scenario line (packet loss at a
/// site, path-MTU clamping, a TCP-refusing instance).
struct LinkConditions {
  /// Per-datagram drop probability, each direction independently.
  double loss = 0.0;
  /// Uniform extra delay in [0, jitter_ms) per delivered datagram.
  double jitter_ms = 0.0;
  /// Fixed extra one-way-pair latency on this path (flaky transit, detours).
  double extra_rtt_ms = 0.0;
  /// Clamps the usable UDP payload below what EDNS0 advertises (a tunnel or
  /// broken middlebox); 0 = no clamp. Responses above min(advertised, mtu)
  /// come back TC=1.
  size_t path_mtu = 0;
  /// The instance refuses TCP connections: truncated answers cannot be
  /// retried and AXFR is impossible (the paper's unreachable-instance class).
  bool tcp_refused = false;
};

/// A time-bounded overlay on link conditions — how scenario transport
/// events (DDoS collateral on surviving sites, a route leak's detour, a
/// regional degradation) reach the wire. During [start, end) on paths to
/// the matching letter, `add` composes additively over the path's base
/// conditions: loss adds (clamped to 1), extra RTT and jitter add, the
/// smaller nonzero MTU clamp wins, tcp_refused ORs in.
struct ConditionWindow {
  util::UnixTime start = 0;
  util::UnixTime end = 0;
  int root_index = -1;  ///< letter the overlay applies to; -1 = every letter
  LinkConditions add;
};

struct TransportConfig {
  uint64_t seed = 42;
  /// Conditions applied to every path…
  LinkConditions defaults;
  /// …overridden per serving site (keyed by AnycastSite::id)…
  std::unordered_map<uint32_t, LinkConditions> site_conditions;
  /// …and composed with any scenario event window covering the exchange
  /// time. Empty for ad-hoc configs: the overlay costs nothing then.
  std::vector<ConditionWindow> condition_windows;
  /// Per-attempt UDP timeout budget and retry schedule (dig-like: one try
  /// plus two retries, timeout doubling per attempt).
  double udp_timeout_ms = 1500.0;
  int udp_max_attempts = 3;
  double retry_backoff = 2.0;
  /// TCP connection establishment: SYN loss burns the connect timeout, a
  /// successful handshake costs `tcp_handshake_rtts` round trips before the
  /// query goes out.
  double tcp_connect_timeout_ms = 3000.0;
  int tcp_max_attempts = 2;
  double tcp_handshake_rtts = 1.0;
  /// AXFR pacing: the framed stream is charged one RTT per in-flight window
  /// of this many bytes (stop-and-wait per window — crude but deterministic).
  size_t tcp_window_bytes = 64 * 1024;
  /// Optional flight recorder (non-owning): when set, every exchange()/axfr()
  /// completion is pushed onto its ring for post-mortem. Diagnostic only —
  /// never part of the deterministic export surface (see flight_recorder.h).
  FlightRecorder* flight_recorder = nullptr;
  /// Per-worker shard of the recorder (non-owning). When set it wins over
  /// `flight_recorder`: records go to the shard's lock-free ring instead of
  /// the owner's mutex-protected one, keeping the recorder off the parallel
  /// hot path (see FlightRecorder::make_shards).
  FlightRecorder::Shard* flight_shard = nullptr;

  const LinkConditions& conditions_for_site(uint32_t site_id) const {
    auto it = site_conditions.find(site_id);
    return it == site_conditions.end() ? defaults : it->second;
  }
};

/// Wire-level accounting of one or more exchanges. Byte counts include the
/// DNS payload plus the 2-octet TCP length prefix where applicable (UDP/IP
/// header overhead is not modelled).
struct TransportStats {
  uint32_t udp_attempts = 0;   // datagrams sent (query side)
  uint32_t tcp_attempts = 0;   // connection attempts (SYNs)
  uint32_t drops = 0;          // datagrams lost to simulated loss
  uint32_t timeouts = 0;       // exchanges that exhausted every retry
  uint32_t tcp_fallbacks = 0;  // exchanges completed over TCP after TC=1
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  /// Total simulated time charged: RTTs for delivered datagrams, timeout
  /// budgets for dropped ones, handshakes and window pacing for TCP.
  double time_ms = 0.0;

  void absorb(const TransportStats& other) {
    udp_attempts += other.udp_attempts;
    tcp_attempts += other.tcp_attempts;
    drops += other.drops;
    timeouts += other.timeouts;
    tcp_fallbacks += other.tcp_fallbacks;
    bytes_sent += other.bytes_sent;
    bytes_received += other.bytes_received;
    time_ms += other.time_ms;
  }
};

/// Result of one query/response exchange.
struct ExchangeOutcome {
  /// A final response was decoded at the client.
  bool delivered = false;
  /// Every retry budget was exhausted (or a wire image failed to parse).
  bool timed_out = false;
  /// The answer needed TCP but the path refuses it; `response` is then the
  /// truncated UDP answer (all the client will ever get).
  bool tcp_refused = false;
  dns::Message response;  // valid when delivered
  TransportProto transport = TransportProto::Udp;
  bool retried_over_tcp = false;
  /// Server-side accounting (feeds telemetry): datagram/TCP queries that
  /// actually reached the server, and whether any answer left it with TC=1.
  uint32_t udp_queries_served = 0;
  uint32_t tcp_queries_served = 0;
  bool truncated = false;
  TransportStats stats;
};

/// Result of one zone transfer attempt.
struct AxfrOutcome {
  /// The framed stream reached the client. False: refused by the server,
  /// no TCP on this path, or the connection never established (timed out —
  /// see `timed_out`).
  bool delivered = false;
  bool timed_out = false;
  bool tcp_refused = false;
  /// Borrowed from the server's per-serial cache; valid while the authority
  /// lives.
  std::span<const uint8_t> stream{};
  TransportStats stats;
};

class Transport {
 public:
  /// The server-side stack a path terminates at. Implementations answer
  /// decoded queries with the semantics of each protocol; the rss module
  /// provides the adapter over RootServerInstance.
  class Endpoint {
   public:
    virtual ~Endpoint() = default;
    /// Response bound for UDP: truncated to min(EDNS0 advertised buffer,
    /// `path_mtu_clamp`) per RFC 6891 (0 = no clamp beyond the advertised
    /// buffer).
    virtual dns::Message udp_response(const dns::Message& query,
                                      util::UnixTime now,
                                      size_t path_mtu_clamp) const = 0;
    /// Response with TCP semantics (no size limit).
    virtual dns::Message tcp_response(const dns::Message& query,
                                      util::UnixTime now) const = 0;
    /// Framed AXFR stream (RFC 5936); empty = transfer refused.
    virtual std::span<const uint8_t> axfr_stream(util::UnixTime now) const = 0;
    /// Telemetry hook: called once per completed exchange when (and only
    /// when) the transport's sink carries an RSSAC002 collector. Default
    /// no-op keeps every existing endpoint unchanged.
    virtual void note_exchange(const ExchangeTelemetry&) const {}
  };

  /// A resolved client↔site path: the route, the link conditions that apply
  /// to it, a reusable wire buffer, and the RNG all its loss/jitter draws
  /// come from. Open one per conversation (a probe, a priming exchange) and
  /// run every message of that conversation over it.
  class Path {
   public:
    const RouteResult& route() const { return route_; }
    const LinkConditions& conditions() const { return conditions_; }
    uint32_t site_id() const { return route_.site_id; }
    // The coordinates the path was opened with (telemetry / flight records).
    uint32_t vp_id() const { return vp_id_; }
    uint32_t root_index() const { return root_index_; }
    util::IpFamily family() const { return family_; }
    uint64_t round() const { return round_; }

   private:
    friend class Transport;
    RouteResult route_;
    LinkConditions conditions_;
    uint32_t vp_id_ = 0;
    uint32_t root_index_ = 0;
    util::IpFamily family_ = util::IpFamily::V4;
    uint64_t round_ = 0;
    util::Rng rng_{0};
    dns::WireWriter wire_;
  };

  /// `obs` (optional) records exchange counts by protocol, drops, timeouts,
  /// TCP fallbacks and wire bytes under `transport.*`.
  explicit Transport(const AnycastRouter& router, TransportConfig config = {},
                     obs::Obs obs = {});

  /// Re-points the metric handles at a different sink. The work-stealing
  /// audit hands each worker's transport the current unit's ObsShard before
  /// every probe — re-resolving seven handles is noise next to the ~47-query
  /// probe they account. Not thread-safe against concurrent exchanges on the
  /// same Transport (each worker owns its transport, so that never happens).
  void rebind_obs(obs::Obs obs);

  /// Resolves the serving site for (client, root, family) at `round` —
  /// exactly one route selection — and binds the per-link conditions and the
  /// path's deterministic RNG stream.
  Path open_path(const VantageView& client, uint32_t root_index,
                 util::IpFamily family, uint64_t round) const;

  /// One DNS exchange over an open path: UDP first with retries, TCP
  /// fallback on truncation.
  ExchangeOutcome exchange(Path& path, const Endpoint& endpoint,
                           const dns::Message& query, util::UnixTime now) const;

  /// One zone transfer over an open path (TCP only, RFC 5936).
  AxfrOutcome axfr(Path& path, const Endpoint& endpoint,
                   util::UnixTime now) const;

  const LinkConditions& conditions_for_site(uint32_t site_id) const {
    return config_.conditions_for_site(site_id);
  }
  /// A site no datagram survives to (loss >= 1) — the analyses treat it as
  /// the paper treats an unreachable instance.
  bool site_unreachable(uint32_t site_id) const {
    return conditions_for_site(site_id).loss >= 1.0;
  }
  /// The deterministic (jitter-free) RTT of a route under this transport's
  /// conditions: the base model RTT plus the site's fixed path penalty.
  double effective_rtt_ms(const RouteResult& route) const {
    return route.rtt_ms + conditions_for_site(route.site_id).extra_rtt_ms;
  }
  /// effective_rtt_ms with scenario condition windows applied: the RTT a
  /// probe of `root_index` at `when` would experience. Identical to the
  /// timeless overload when no window covers the instant.
  double effective_rtt_ms(const RouteResult& route, int root_index,
                          util::UnixTime when) const {
    if (config_.condition_windows.empty()) return effective_rtt_ms(route);
    return route.rtt_ms +
           conditions_at(route.site_id, root_index, when).extra_rtt_ms;
  }
  /// The composed conditions of a path to `site_id` serving `root_index`
  /// at `when` (base site conditions + every covering window).
  LinkConditions conditions_at(uint32_t site_id, int root_index,
                               util::UnixTime when) const;

  const TransportConfig& config() const { return config_; }
  const AnycastRouter& router() const { return *router_; }

 private:
  ExchangeOutcome exchange_impl(Path& path, const Endpoint& endpoint,
                                const dns::Message& query,
                                util::UnixTime now) const;
  AxfrOutcome axfr_impl(Path& path, const Endpoint& endpoint,
                        util::UnixTime now) const;
  /// One delivered-datagram round trip on this path (base + extra + jitter).
  double round_trip_ms(Path& path) const;
  /// Draws one datagram-loss decision (false on loss-free paths, no draw).
  bool dropped(Path& path) const;
  /// Establishes a TCP connection; returns false when every SYN was lost.
  bool tcp_connect(Path& path, TransportStats& stats) const;
  void note_exchange(TransportProto proto) const;

  const AnycastRouter* router_;
  TransportConfig config_;
  obs::Obs obs_;
  // Pre-resolved metric handles; null when no sink is attached.
  obs::Counter* exchanges_[2] = {nullptr, nullptr};  // udp, tcp
  obs::Counter* drops_ = nullptr;
  obs::Counter* timeouts_ = nullptr;
  obs::Counter* tcp_fallbacks_ = nullptr;
  obs::Counter* bytes_sent_ = nullptr;
  obs::Counter* bytes_received_ = nullptr;
};

}  // namespace rootsim::netsim
