// Simulated Internet topology: interconnection facilities, transit ASes and
// anycast site placement.
//
// This substitutes for the real Internet the paper measures through. The
// model keeps exactly the structure the paper's analyses consume:
//
//  * Facilities — carrier hotels / IXP sites. Root operators deploy instances
//    at facilities; several operators choosing the same well-connected
//    facility is what produces the server co-location of RQ1 (§5). A
//    facility's router is the shared second-to-last traceroute hop.
//  * Anycast sites — (root, facility, type) with global sites announced to
//    everyone and local sites announced NO_EXPORT (visible only to VPs whose
//    connectivity includes that facility, §2).
//  * Detour ASes — address-family-specific transit providers (the paper's
//    AS6939/AS12956 observations, §6) that attract routes for some
//    (root, region, family) combinations and move traffic to distant
//    replicas or onto faster paths.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/geo.h"
#include "util/ip.h"
#include "util/rng.h"

namespace rootsim::netsim {

using FacilityId = uint32_t;
using AsId = uint32_t;

/// An interconnection facility (data centre / IXP location).
struct Facility {
  FacilityId id = 0;
  std::string name;  // e.g. "EU-FRA-03"
  util::Region region = util::Region::Europe;
  util::GeoPoint location;
  /// Deployment attractiveness weight (Zipf-ish): big IXP facilities attract
  /// many root operators — the mechanism behind co-location.
  double attractiveness = 1.0;
  bool is_ixp = false;
};

enum class SiteType : uint8_t { Global, Local };

/// A local site is local either to a metro/IXP (reachable by any VP peering
/// at the facility) or to a single AS (paper §2) — the latter is effectively
/// invisible to RING-style VPs, which is why the paper's local-site coverage
/// is much lower than its global coverage.
enum class LocalScope : uint8_t { IxpLocal, AsLocal };

/// One anycast instance of one root deployment.
struct AnycastSite {
  uint32_t id = 0;
  uint32_t root_index = 0;  // 0 = a.root .. 12 = m.root
  FacilityId facility = 0;
  SiteType type = SiteType::Global;
  LocalScope local_scope = LocalScope::IxpLocal;
  util::Region region = util::Region::Europe;
  util::GeoPoint location;
  std::string identity;  // hostname.bind-style instance identifier
};

/// Per-root, per-region site counts (the paper's Table 4 ground truth).
struct DeploymentSpec {
  char letter = 'a';
  // Indexed by util::Region (6 entries each).
  std::array<int, util::kRegionCount> global_sites{};
  std::array<int, util::kRegionCount> local_sites{};
  /// Fraction of this operator's local sites that are AS-local (inside ISP
  /// networks) rather than IXP-local. Drives the per-root local coverage
  /// differences of Table 4 (j.root locals are mostly at IXPs and well
  /// covered; f.root locals are mostly in ISPs and poorly covered).
  double as_local_fraction = 0.5;

  int total_global() const;
  int total_local() const;
};

/// An address-family-specific routing quirk for (root, region, family):
/// a fraction of VPs' routes are carried by a specific transit AS, changing
/// both the selected replica and the experienced RTT (paper §6).
struct DetourRule {
  uint32_t root_index = 0;
  util::Region region = util::Region::Europe;
  util::IpFamily family = util::IpFamily::V4;
  AsId via_as = 0;            // e.g. 6939 or 12956
  double vp_fraction = 0.0;   // share of VPs whose routes use the detour
  double mean_rtt_ms = 100.0; // average RTT experienced on the detour
  double rtt_sigma = 0.5;     // lognormal shape around the mean
  /// If true the detour leads out of the region to a remote replica (adds
  /// geographic distance in Fig. 5 terms).
  bool out_of_region = false;
};

/// The assembled topology.
struct Topology {
  std::vector<Facility> facilities;
  std::vector<AnycastSite> sites;          // all roots' sites
  std::vector<DetourRule> detours;
  // Site ids grouped per root for quick catchment scans.
  std::array<std::vector<uint32_t>, 13> sites_by_root{};

  const Facility& facility_of(const AnycastSite& site) const {
    return facilities[site.facility];
  }
};

struct TopologyConfig {
  uint64_t seed = 42;
  /// Facilities per region; defaults sized so that big regions have enough
  /// distinct locations while popular facilities still get heavily reused.
  std::array<int, util::kRegionCount> facilities_per_region = {8, 28, 60, 42, 10, 8};
  /// Zipf skew for facility attractiveness (higher = more co-location).
  double attractiveness_skew = 1.0;
};

/// Builds facilities and places every deployment's sites. Deterministic in
/// config.seed.
Topology build_topology(const TopologyConfig& config,
                        const std::vector<DeploymentSpec>& deployments,
                        const std::vector<DetourRule>& detours);

}  // namespace rootsim::netsim
