#include "netsim/topology.h"

#include <algorithm>
#include <numeric>

#include "util/strings.h"

namespace rootsim::netsim {

int DeploymentSpec::total_global() const {
  return std::accumulate(global_sites.begin(), global_sites.end(), 0);
}

int DeploymentSpec::total_local() const {
  return std::accumulate(local_sites.begin(), local_sites.end(), 0);
}

namespace {

std::vector<Facility> build_facilities(const TopologyConfig& config,
                                       util::Rng& rng) {
  std::vector<Facility> facilities;
  FacilityId next_id = 0;
  for (util::Region region : util::all_regions()) {
    int count = config.facilities_per_region[static_cast<size_t>(region)];
    const util::RegionBox& box = util::region_box(region);
    for (int i = 0; i < count; ++i) {
      Facility f;
      f.id = next_id++;
      f.name = util::format("%s-%02d", std::string(util::region_short_name(region)).c_str(), i);
      f.region = region;
      f.location = {rng.uniform_real(box.lat_min, box.lat_max),
                    rng.uniform_real(box.lon_min, box.lon_max)};
      // Zipf-like attractiveness: rank 1 facility in a region is the big IXP.
      f.attractiveness =
          1.0 / std::pow(static_cast<double>(i + 1), config.attractiveness_skew);
      f.is_ixp = i < std::max(1, count / 6);
      facilities.push_back(std::move(f));
    }
  }
  return facilities;
}

// Picks a facility in `region` weighted by attractiveness.
FacilityId pick_facility(const std::vector<Facility>& facilities,
                         util::Region region, util::Rng& rng) {
  std::vector<double> weights;
  std::vector<FacilityId> ids;
  for (const auto& f : facilities) {
    if (f.region != region) continue;
    weights.push_back(f.attractiveness);
    ids.push_back(f.id);
  }
  if (ids.empty()) return 0;
  return ids[rng.weighted_index(weights)];
}

}  // namespace

Topology build_topology(const TopologyConfig& config,
                        const std::vector<DeploymentSpec>& deployments,
                        const std::vector<DetourRule>& detours) {
  util::Rng rng(config.seed);
  Topology topo;
  topo.facilities = build_facilities(config, rng);
  topo.detours = detours;

  uint32_t next_site_id = 0;
  for (size_t root = 0; root < deployments.size() && root < 13; ++root) {
    const DeploymentSpec& spec = deployments[root];
    util::Rng placement = rng.fork(util::format("placement/%c", spec.letter));
    std::array<int, util::kRegionCount> instance_counter{};
    auto place = [&](util::Region region, SiteType type, int count) {
      for (int i = 0; i < count; ++i) {
        AnycastSite site;
        site.id = next_site_id++;
        site.root_index = static_cast<uint32_t>(root);
        site.type = type;
        if (type == SiteType::Local)
          site.local_scope = placement.chance(spec.as_local_fraction)
                                 ? LocalScope::AsLocal
                                 : LocalScope::IxpLocal;
        site.region = region;
        site.facility = pick_facility(topo.facilities, region, placement);
        const Facility& facility = topo.facilities[site.facility];
        // Instances sit at their facility with small metro-scale scatter.
        site.location = {facility.location.lat_deg + placement.normal(0, 0.15),
                         facility.location.lon_deg + placement.normal(0, 0.15)};
        int seq = instance_counter[static_cast<size_t>(region)]++;
        site.identity = util::format(
            "%s%02d.%c.root-servers.org",
            util::to_lower(std::string(util::region_short_name(region))).c_str(),
            seq, spec.letter);
        topo.sites_by_root[root].push_back(site.id);
        topo.sites.push_back(std::move(site));
      }
    };
    for (util::Region region : util::all_regions()) {
      place(region, SiteType::Global, spec.global_sites[static_cast<size_t>(region)]);
      place(region, SiteType::Local, spec.local_sites[static_cast<size_t>(region)]);
    }
  }
  return topo;
}

}  // namespace rootsim::netsim
