#include "netsim/routing.h"

#include <algorithm>
#include <cmath>

namespace rootsim::netsim {

namespace {

// Stable per-tuple hash for deterministic "random" decisions without storing
// per-tuple state.
uint64_t mix(uint64_t a, uint64_t b, uint64_t c, uint64_t d = 0) {
  uint64_t state = a * 0x9e3779b97f4a7c15ULL ^ b * 0xbf58476d1ce4e5b9ULL ^
                   c * 0x94d049bb133111ebULL ^ d * 0x2545f4914f6cdd1dULL;
  return util::splitmix64(state);
}

double unit_from_hash(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

uint64_t family_tag(util::IpFamily family) {
  return family == util::IpFamily::V4 ? 4 : 6;
}

}  // namespace

std::array<ChurnSpec, 13> default_churn_specs() {
  // Medians from the paper §4.2: b.root is remarkably stable (8 changes for
  // both families over the campaign) while g.root — with the *same* number of
  // sites — sees 36 (v4) and 64 (v6). c.root and h.root also show elevated
  // IPv6 churn. Values for the remaining roots interpolate with deployment
  // size (larger deployments churn somewhat more, per Koch et al.).
  std::array<ChurnSpec, 13> specs{};
  specs[0] = {12, 14};    // a
  specs[1] = {8, 8};      // b
  specs[2] = {14, 30};    // c (elevated v6)
  specs[3] = {16, 18};    // d
  specs[4] = {24, 26};    // e
  specs[5] = {28, 30};    // f
  specs[6] = {36, 64};    // g (the paper's surprise case)
  specs[7] = {14, 28};    // h (elevated v6)
  specs[8] = {20, 22};    // i
  specs[9] = {22, 24};    // j
  specs[10] = {24, 26};   // k
  specs[11] = {26, 28};   // l
  specs[12] = {12, 13};   // m
  return specs;
}

AnycastRouter::AnycastRouter(const Topology& topology, RouterConfig config,
                             obs::Obs obs)
    : topology_(&topology), config_(config), seed_mix_(config.seed * 0x9e3779b97f4a7c15ULL) {
  for (size_t f = 0; f < 2; ++f) {
    obs::LabelSet labels{{"family", f == 0 ? "v4" : "v6"}};
    selections_[f] = obs.counter_handle("netsim.route_selections", labels);
    site_flips_[f] = obs.counter_handle("netsim.site_flips", labels);
    churn_events_[f] = obs.counter_handle("netsim.churn_events", labels);
  }
}

double AnycastRouter::distance_km(const VantageView& vp, uint32_t site_id) const {
  return util::haversine_km(vp.location, topology_->sites[site_id].location);
}

const AnycastSite& AnycastRouter::closest_global_site(const VantageView& vp,
                                                      uint32_t root_index) const {
  const AnycastSite* best = nullptr;
  double best_distance = 0;
  for (uint32_t site_id : topology_->sites_by_root[root_index]) {
    const AnycastSite& site = topology_->sites[site_id];
    if (site.type != SiteType::Global) continue;
    double d = util::haversine_km(vp.location, site.location);
    if (!best || d < best_distance) {
      best = &site;
      best_distance = d;
    }
  }
  return *best;
}

AnycastRouter::Candidates AnycastRouter::candidates_for(
    const VantageView& vp, uint32_t root_index, util::IpFamily family) const {
  // Detour rules first: a matching rule hijacks this VP's routes for this
  // (root, family) with the configured probability (stable per VP).
  for (const DetourRule& rule : topology_->detours) {
    if (rule.root_index != root_index || rule.region != vp.region ||
        rule.family != family)
      continue;
    uint64_t h = mix(seed_mix_, vp.vp_id, root_index * 131 + family_tag(family),
                     rule.via_as);
    if (unit_from_hash(h) < rule.vp_fraction) {
      // Select the replica the detour delivers to: the best site as seen from
      // the transit AS (out-of-region rules pick a remote one).
      Candidates c;
      c.via_detour = true;
      c.detour_as = rule.via_as;
      uint32_t chosen = 0;
      double best = 1e18;
      for (uint32_t site_id : topology_->sites_by_root[root_index]) {
        const AnycastSite& site = topology_->sites[site_id];
        if (site.type != SiteType::Global) continue;
        bool remote = site.region != vp.region;
        if (rule.out_of_region != remote) continue;
        double d = util::haversine_km(vp.location, site.location);
        // Deterministic tie-break noise per site.
        d *= 1.0 + 0.2 * unit_from_hash(mix(seed_mix_, site_id, rule.via_as, 7));
        if (d < best) {
          best = d;
          chosen = site_id;
        }
      }
      if (best < 1e18) {
        c.primary = chosen;
        c.secondary = chosen;
        double u = unit_from_hash(mix(seed_mix_, vp.vp_id, chosen, 99));
        // Lognormal RTT around the rule's calibrated mean.
        double z = std::sqrt(-2.0 * std::log(std::max(u, 1e-12))) *
                   std::cos(6.283185307179586 *
                            unit_from_hash(mix(seed_mix_, vp.vp_id, chosen, 100)));
        double mu = std::log(rule.mean_rtt_ms) - rule.rtt_sigma * rule.rtt_sigma / 2;
        c.primary_rtt = std::exp(mu + rule.rtt_sigma * z);
        c.secondary_rtt = c.primary_rtt;
        return c;
      }
    }
  }

  // Normal BGP-proxy selection: rank by perturbed distance.
  struct Scored {
    uint32_t site_id;
    double cost;
    double distance;
  };
  std::vector<Scored> scored;
  scored.reserve(topology_->sites_by_root[root_index].size());
  for (uint32_t site_id : topology_->sites_by_root[root_index]) {
    const AnycastSite& site = topology_->sites[site_id];
    if (site.type == SiteType::Local) {
      if (site.local_scope == LocalScope::AsLocal) {
        // Inside some ISP's network; a RING-style VP is almost never a
        // customer of exactly that ISP.
        bool insider =
            unit_from_hash(mix(seed_mix_, vp.asn, site_id, 0xA5)) < 0.01;
        if (!insider) continue;
      } else {
        // NO_EXPORT at an IXP: visible only through the VP's own facilities.
        bool visible = std::find(vp.connectivity.begin(), vp.connectivity.end(),
                                 site.facility) != vp.connectivity.end();
        if (!visible) continue;
      }
    }
    double distance = util::haversine_km(vp.location, site.location);
    // Per-(VP, site, family) policy perturbation: BGP path choice is not
    // geographic. Lognormal multiplier, median 1.
    double u1 = unit_from_hash(mix(seed_mix_, vp.vp_id, site_id,
                                   family_tag(family)));
    double u2 = unit_from_hash(mix(seed_mix_, vp.vp_id, site_id,
                                   family_tag(family) + 100));
    double z = std::sqrt(-2.0 * std::log(std::max(u1, 1e-12))) *
               std::cos(6.283185307179586 * u2);
    double cost = (distance + 200.0) * std::exp(config_.policy_noise_sigma * z);
    // Local sites are preferred when visible (shorter AS path).
    if (site.type == SiteType::Local) cost *= 0.5;
    scored.push_back({site_id, cost, distance});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.cost < b.cost; });

  Candidates c;
  c.primary = scored[0].site_id;
  c.secondary = scored.size() > 1 ? scored[1].site_id : scored[0].site_id;
  auto rtt_of = [&](const Scored& s) {
    // Fiber RTT + access network constant + per-path jitter.
    double base = util::fiber_rtt_ms(s.distance) + 2.0;
    double jitter =
        1.0 + 0.5 * unit_from_hash(mix(seed_mix_, vp.vp_id, s.site_id, 55));
    return base * jitter;
  };
  c.primary_rtt = rtt_of(scored[0]);
  c.secondary_rtt = scored.size() > 1 ? rtt_of(scored[1]) : c.primary_rtt;
  return c;
}

std::vector<AnycastRouter::AnnouncedRoute> AnycastRouter::announced_routes(
    const VantageView& vp, uint32_t root_index, util::IpFamily family,
    size_t max_routes) const {
  // Re-run the selection scan but keep the whole ranking — the control-plane
  // table a route collector at the VP would export.
  struct Scored {
    uint32_t site_id;
    double cost;
  };
  std::vector<Scored> scored;
  uint64_t ftag = family_tag(family);
  for (uint32_t site_id : topology_->sites_by_root[root_index]) {
    const AnycastSite& site = topology_->sites[site_id];
    if (site.type == SiteType::Local) {
      if (site.local_scope == LocalScope::AsLocal) {
        bool insider =
            unit_from_hash(mix(seed_mix_, vp.asn, site_id, 0xA5)) < 0.01;
        if (!insider) continue;
      } else {
        bool visible = std::find(vp.connectivity.begin(), vp.connectivity.end(),
                                 site.facility) != vp.connectivity.end();
        if (!visible) continue;
      }
    }
    double distance = util::haversine_km(vp.location, site.location);
    double u1 = unit_from_hash(mix(seed_mix_, vp.vp_id, site_id, ftag));
    double u2 = unit_from_hash(mix(seed_mix_, vp.vp_id, site_id, ftag + 100));
    double z = std::sqrt(-2.0 * std::log(std::max(u1, 1e-12))) *
               std::cos(6.283185307179586 * u2);
    double cost = (distance + 200.0) * std::exp(config_.policy_noise_sigma * z);
    if (site.type == SiteType::Local) cost *= 0.5;
    scored.push_back({site_id, cost});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.cost < b.cost; });
  if (scored.size() > max_routes) scored.resize(max_routes);

  std::vector<AnnouncedRoute> routes;
  routes.reserve(scored.size());
  for (const Scored& s : scored) {
    AnnouncedRoute route;
    route.site_id = s.site_id;
    route.path_cost = s.cost;
    // Synthetic AS path: VP's AS, 1-3 transit hops keyed by (vp, site), the
    // operator's origin AS (stable per root: 64496 + root).
    route.as_path.push_back(vp.asn);
    const AnycastSite& site = topology_->sites[s.site_id];
    size_t transit_hops = 1 + mix(seed_mix_, vp.vp_id, s.site_id, ftag + 3) % 3;
    for (size_t i = 0; i < transit_hops; ++i)
      route.as_path.push_back(static_cast<AsId>(
          3000 + mix(0xB0u + i, vp.vp_id ^ (site.facility << 8), i, ftag) % 5000));
    route.as_path.push_back(64496 + root_index);
    routes.push_back(std::move(route));
  }
  return routes;
}

double AnycastRouter::flip_probability(const VantageView& vp, uint32_t root_index,
                                       util::IpFamily family) const {
  const ChurnSpec& spec = config_.churn[root_index];
  double median_changes =
      family == util::IpFamily::V4 ? spec.median_changes_v4 : spec.median_changes_v6;
  // The selection at round r is `secondary` iff U(r) < p; transitions between
  // consecutive rounds then happen with probability 2p(1-p), so expected
  // changes = rounds * 2p(1-p). Solve for small p.
  double target_rate =
      median_changes / static_cast<double>(std::max<uint64_t>(config_.campaign_rounds, 1));
  double p = target_rate / 2.0;  // first-order inverse of 2p(1-p)
  return std::min(0.5, p * vp.churn_multiplier);
}

RouteResult AnycastRouter::finish(const VantageView& vp, uint32_t root_index,
                                  util::IpFamily family, const Candidates& c,
                                  bool use_secondary) const {
  RouteResult result;
  result.site_id = use_secondary ? c.secondary : c.primary;
  result.rtt_ms = use_secondary ? c.secondary_rtt : c.primary_rtt;
  result.via_detour = c.via_detour;
  result.detour_as = c.detour_as;

  const AnycastSite& site = topology_->sites[result.site_id];
  uint64_t ftag = family_tag(family);

  // Second-to-last hop identity.
  RouterId hop;
  if (c.via_detour) {
    // The detour transit AS's edge router serves several roots' traffic from
    // this VP — shared infrastructure observed via a shared hop (paper §5's
    // AS6939/AS12956 note). Keyed by AS and family only: every root carried
    // by the AS from this region funnels through the same edge.
    hop = mix(0xD0u, c.detour_as, ftag, static_cast<uint64_t>(vp.region));
  } else {
    double dedicated_prob = family == util::IpFamily::V4
                                ? config_.dedicated_router_prob_v4
                                : config_.dedicated_router_prob_v6;
    // Some facilities funnel all hosted roots through one shared fabric
    // router; VPs routed there observe very large co-location clusters.
    bool shared_fabric =
        unit_from_hash(mix(0xFAu, site.facility, 1, 2)) <
        config_.shared_fabric_fraction;
    if (shared_fabric) dedicated_prob = 0.04;
    bool dedicated =
        unit_from_hash(mix(seed_mix_, site.facility, root_index, ftag)) <
        dedicated_prob;
    hop = dedicated ? mix(0xF1u, site.facility, root_index * 29 + 11, ftag)
                    : mix(0xF0u, site.facility, 0, ftag);
  }
  // Traceroute may miss the hop entirely; analysis then must treat it as
  // unique (0 is the "no answer" marker).
  bool lost = unit_from_hash(mix(seed_mix_, vp.vp_id, result.site_id,
                                 ftag + 777)) < config_.hop_loss_probability;
  result.second_to_last_hop = lost ? 0 : hop;

  // Synthesized full path: VP gateway, VP AS core, 1-3 transit hops,
  // facility router (the second-to-last hop), then the instance.
  result.hops.push_back(mix(0xA0u, vp.vp_id, 0, ftag));
  result.hops.push_back(mix(0xA1u, vp.asn, 0, ftag));
  size_t transit_hops =
      1 + mix(seed_mix_, vp.vp_id, result.site_id, ftag + 3) % 3;
  for (size_t i = 0; i < transit_hops; ++i)
    result.hops.push_back(mix(0xB0u + i, vp.vp_id ^ (site.facility << 8), i, ftag));
  result.hops.push_back(result.second_to_last_hop);
  result.hops.push_back(mix(0xC0u, site.id, root_index, ftag));
  return result;
}

RouteResult AnycastRouter::route(const VantageView& vp, uint32_t root_index,
                                 util::IpFamily family) const {
  Candidates c = candidates_for(vp, root_index, family);
  obs::inc(selections_[family == util::IpFamily::V4 ? 0 : 1]);
  return finish(vp, root_index, family, c, /*use_secondary=*/false);
}

RouteResult AnycastRouter::route_at(const VantageView& vp, uint32_t root_index,
                                    util::IpFamily family, uint64_t round) const {
  Candidates c = candidates_for(vp, root_index, family);
  double p = flip_probability(vp, root_index, family);
  uint64_t stream = mix(seed_mix_ ^ 0x5151515151515151ULL, vp.vp_id,
                        root_index * 131 + family_tag(family), 0xABCD);
  bool use_secondary = unit_from_hash(mix(stream, round, 1, 2)) < p;
  size_t f = family == util::IpFamily::V4 ? 0 : 1;
  obs::inc(selections_[f]);
  if (c.primary != c.secondary) {
    if (use_secondary) obs::inc(site_flips_[f]);
    // A churn event is a round-over-round site change — the unit Fig. 3
    // counts. The previous round's pick replays the same hash stream, so
    // this costs one mix() and stays deterministic.
    if (round > 0 && churn_events_[f]) {
      bool prev_secondary = unit_from_hash(mix(stream, round - 1, 1, 2)) < p;
      if (prev_secondary != use_secondary) obs::inc(churn_events_[f]);
    }
  }
  return finish(vp, root_index, family, c, use_secondary);
}

AnycastRouter::Selection AnycastRouter::prepare_selection(
    const VantageView& vp, uint32_t root_index, util::IpFamily family) const {
  Candidates c = candidates_for(vp, root_index, family);
  Selection s;
  s.primary_site = c.primary;
  s.secondary_site = c.secondary;
  s.flip_probability = flip_probability(vp, root_index, family);
  s.flip_stream = mix(seed_mix_ ^ 0x5151515151515151ULL, vp.vp_id,
                      root_index * 131 + family_tag(family), 0xABCD);
  return s;
}

uint32_t AnycastRouter::site_at_round(const Selection& selection, uint64_t round) {
  uint64_t h = mix(selection.flip_stream, round, 1, 2);
  return unit_from_hash(h) < selection.flip_probability ? selection.secondary_site
                                                        : selection.primary_site;
}

}  // namespace rootsim::netsim
