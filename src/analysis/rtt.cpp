#include "analysis/rtt.h"

#include <cmath>

#include "util/strings.h"

namespace rootsim::analysis {

std::string rtt_column_label(size_t column) {
  if (column == 0) return "a.root";
  if (column == 1) return "b.root (new)";
  if (column == 2) return "b.root (old)";
  return util::format("%c.root", static_cast<char>('a' + column - 1));
}

namespace {

// Maps a column index to the catalog root index (b appears twice).
uint32_t column_root(size_t column) {
  if (column == 0) return 0;
  if (column == 1 || column == 2) return 1;
  return static_cast<uint32_t>(column - 1);
}

}  // namespace

RttReport compute_rtt(const measure::Campaign& campaign) {
  RttReport report;
  const netsim::AnycastRouter& router = campaign.router();
  const netsim::Transport& transport = campaign.transport();
  for (const auto& vp : campaign.vantage_points()) {
    size_t region = static_cast<size_t>(vp.view.region);
    for (size_t column = 0; column < kRttColumns; ++column) {
      uint32_t root = column_root(column);
      for (util::IpFamily family : {util::IpFamily::V4, util::IpFamily::V6}) {
        netsim::RouteResult route = router.route(vp.view, root, family);
        RttCell& cell = report.cells[region][column];
        // What a probe actually measures is the path RTT under the
        // transport's link conditions (a per-site penalty shows up here
        // exactly as it would in the collected .mtr files).
        // The old b.root address keeps answering from the same catchment:
        // same sites, marginally different jitter realization.
        double rtt = transport.effective_rtt_ms(route);
        if (column == 2) rtt *= 1.02;
        if (family == util::IpFamily::V4)
          cell.samples_v4.push_back(rtt);
        else
          cell.samples_v6.push_back(rtt);
      }
    }
  }
  for (auto& region_row : report.cells)
    for (auto& cell : region_row) {
      cell.summary_v4 = util::summarize(cell.samples_v4);
      cell.summary_v6 = util::summarize(cell.samples_v6);
    }
  return report;
}

std::string RttReport::render_region(util::Region region) const {
  // One line per root per family: log-scale box rendering 1ms..1000ms.
  auto bar = [](const util::Summary& s) {
    const int width = 48;  // maps log10(1)..log10(1000) onto columns
    std::string line(width, ' ');
    auto position = [&](double ms) {
      double clamped = std::min(std::max(ms, 1.0), 1000.0);
      return std::min(width - 1,
                      static_cast<int>(std::log10(clamped) / 3.0 * width));
    };
    if (s.count == 0) return line;
    int lo = position(s.p25), mid = position(s.median), hi = position(s.p75);
    int min_pos = position(s.min), max_pos = position(s.max);
    for (int i = min_pos; i <= max_pos; ++i) line[static_cast<size_t>(i)] = '-';
    for (int i = lo; i <= hi; ++i) line[static_cast<size_t>(i)] = '=';
    line[static_cast<size_t>(mid)] = '|';
    return line;
  };
  std::string out = util::format("%s (RTT ms, log scale 1..1000)\n",
                                 std::string(util::region_name(region)).c_str());
  out += "                 1ms            10ms            100ms          1s\n";
  for (size_t column = 0; column < kRttColumns; ++column) {
    const RttCell& c = cell(region, column);
    out += util::format("%-13s v4 [%s] n=%zu med=%.1f\n",
                        rtt_column_label(column).c_str(),
                        bar(c.summary_v4).c_str(), c.summary_v4.count,
                        c.summary_v4.median);
    out += util::format("%-13s v6 [%s] n=%zu med=%.1f\n", "",
                        bar(c.summary_v6).c_str(), c.summary_v6.count,
                        c.summary_v6.median);
  }
  return out;
}

}  // namespace rootsim::analysis
