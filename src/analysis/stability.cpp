#include "analysis/stability.h"

#include <algorithm>

namespace rootsim::analysis {

StabilityReport compute_stability(const measure::Campaign& campaign,
                                  const StabilityOptions& options) {
  StabilityReport report;
  const netsim::AnycastRouter& router = campaign.router();
  const netsim::Transport& transport = campaign.transport();
  const size_t rounds = campaign.schedule().round_count();
  const size_t stride = std::max<size_t>(1, options.round_stride);

  for (uint32_t root = 0; root < rss::kRootCount; ++root) {
    RootStability& stability = report.per_root[root];
    stability.letter = static_cast<char>('a' + root);
    for (const auto& vp : campaign.vantage_points()) {
      for (util::IpFamily family : {util::IpFamily::V4, util::IpFamily::V6}) {
        auto selection = router.prepare_selection(vp.view, root, family);
        // An unreachable site (transport loss >= 1) never answers a probe:
        // what the VP *observes* is the selection's other site — the same
        // remap a real BGP withdrawal-less dead instance produces in the
        // paper's data.
        auto observed = [&](uint32_t site) {
          if (!transport.site_unreachable(site)) return site;
          uint32_t other = site == selection.primary_site
                               ? selection.secondary_site
                               : selection.primary_site;
          return transport.site_unreachable(other) ? site : other;
        };
        uint64_t changes = 0;
        uint32_t previous =
            observed(netsim::AnycastRouter::site_at_round(selection, 0));
        for (size_t round = stride; round < rounds; round += stride) {
          uint32_t current =
              observed(netsim::AnycastRouter::site_at_round(selection, round));
          if (current != previous) ++changes;
          previous = current;
        }
        // Subsampling underestimates change counts; scale to full campaign.
        double estimated = static_cast<double>(changes) * static_cast<double>(stride);
        if (family == util::IpFamily::V4)
          stability.changes_v4.push_back(estimated);
        else
          stability.changes_v6.push_back(estimated);
      }
    }
    stability.median_v4 = util::percentile(stability.changes_v4, 0.5);
    stability.median_v6 = util::percentile(stability.changes_v6, 0.5);
  }
  return report;
}

std::vector<StabilityReport::CecdfPoint> StabilityReport::cecdf(
    int root_index, const std::vector<double>& thresholds) const {
  const RootStability& stability = per_root[static_cast<size_t>(root_index)];
  util::Ecdf ecdf_v4(stability.changes_v4);
  util::Ecdf ecdf_v6(stability.changes_v6);
  std::vector<CecdfPoint> points;
  points.reserve(thresholds.size());
  for (double threshold : thresholds)
    points.push_back({threshold, ecdf_v4.complementary(threshold),
                      ecdf_v6.complementary(threshold)});
  return points;
}

}  // namespace rootsim::analysis
