// RTT analysis per continent, root and address family (paper §6,
// Figs. 6/14/15 and the per-root regional comparisons).
//
// RTT samples come from the routing layer's latency model: fiber distance
// plus access/jitter terms on normal paths, calibrated detour distributions
// where the paper attributes effects to specific transit ASes (AS6939,
// AS12956).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "measure/campaign.h"
#include "util/stats.h"

namespace rootsim::analysis {

/// b.root appears twice in the figures (new and old address rows); we model
/// both addresses with the same catchment, so the report has 14 columns like
/// the paper's plots.
inline constexpr size_t kRttColumns = 14;

std::string rtt_column_label(size_t column);

struct RttCell {
  std::vector<double> samples_v4;
  std::vector<double> samples_v6;
  util::Summary summary_v4;
  util::Summary summary_v6;
};

struct RttReport {
  /// [region][column] with columns a, b(new), b(old), c..m.
  std::array<std::array<RttCell, kRttColumns>, util::kRegionCount> cells{};

  const RttCell& cell(util::Region region, size_t column) const {
    return cells[static_cast<size_t>(region)][column];
  }
  /// Text violin/box rendering of one region's row (Figs. 6/14/15).
  std::string render_region(util::Region region) const;
};

RttReport compute_rtt(const measure::Campaign& campaign);

}  // namespace rootsim::analysis
