#include "analysis/rssac_metrics.h"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/propagation.h"

namespace rootsim::analysis {

RssacReport compute_rssac_metrics(const measure::Campaign& campaign,
                                  const RssacOptions& options) {
  RssacReport report;
  const netsim::AnycastRouter& router = campaign.router();
  const measure::Schedule& schedule = campaign.schedule();
  util::UnixTime start = schedule.config().start;
  util::UnixTime end = schedule.config().end;

  // Publication latency reuses the propagation experiment (one zone edit).
  PropagationOptions propagation_options;
  propagation_options.max_instances_per_root = options.propagation_instances;
  auto propagation = measure_soa_propagation(
      campaign, util::make_time(2023, 10, 10, 12, 0), propagation_options);

  for (uint32_t root = 0; root < rss::kRootCount; ++root) {
    RootServiceMetrics& metrics = report.per_root[root];
    metrics.letter = static_cast<char>('a' + root);
    std::array<std::vector<double>, 2> rtts;  // [family]
    std::array<size_t, 2> answered{};
    std::array<size_t, 2> probes{};
    for (const auto& vp : campaign.vantage_points()) {
      for (util::IpFamily family : {util::IpFamily::V4, util::IpFamily::V6}) {
        size_t f = family == util::IpFamily::V4 ? 0 : 1;
        auto selection = router.prepare_selection(vp.view, root, family);
        netsim::RouteResult route = router.route(vp.view, root, family);
        rtts[f].push_back(route.rtt_ms);
        // Sample rounds: the probe fails when the selected site is dark.
        for (size_t s = 0; s < options.sampled_rounds; ++s) {
          uint64_t round =
              (s * 1009 + vp.view.vp_id) % schedule.round_count();
          uint32_t site =
              netsim::AnycastRouter::site_at_round(selection, round);
          util::UnixTime when = schedule.round_time(round);
          ++probes[f];
          if (rss::site_available(site, when, start, end, options.outages))
            ++answered[f];
        }
      }
    }
    metrics.availability_v4 =
        probes[0] ? static_cast<double>(answered[0]) / probes[0] : 1.0;
    metrics.availability_v6 =
        probes[1] ? static_cast<double>(answered[1]) / probes[1] : 1.0;
    metrics.median_rtt_v4 = util::percentile(rtts[0], 0.5);
    metrics.median_rtt_v6 = util::percentile(rtts[1], 0.5);
    metrics.p95_rtt_v4 = util::percentile(rtts[0], 0.95);
    metrics.p95_rtt_v6 = util::percentile(rtts[1], 0.95);
    metrics.median_publication_latency_s =
        propagation.per_root[root].summary.median;
    report.worst_availability =
        std::min({report.worst_availability, metrics.availability_v4,
                  metrics.availability_v6});
  }
  return report;
}

ClusterFailureImpact simulate_cluster_failure(const measure::Campaign& campaign) {
  ClusterFailureImpact impact;
  const netsim::Topology& topology = campaign.topology();
  const netsim::AnycastRouter& router = campaign.router();

  // Find the facility hosting the most distinct roots (the §5 cluster).
  std::map<netsim::FacilityId, std::set<uint32_t>> roots_at;
  for (const auto& site : topology.sites)
    roots_at[site.facility].insert(site.root_index);
  for (const auto& [facility, roots] : roots_at) {
    if (roots.size() > impact.roots_hosted) {
      impact.roots_hosted = roots.size();
      impact.facility = facility;
    }
  }

  std::vector<double> deltas;
  for (const auto& vp : campaign.vantage_points()) {
    for (uint32_t root = 0; root < rss::kRootCount; ++root) {
      for (util::IpFamily family : {util::IpFamily::V4, util::IpFamily::V6}) {
        ++impact.selections_total;
        netsim::RouteResult route = router.route(vp.view, root, family);
        const netsim::AnycastSite& selected = topology.sites[route.site_id];
        if (selected.facility != impact.facility) continue;
        // The selected site went dark: fail over to the best announced route
        // at a different facility. Compare like-with-like using the fiber
        // RTT of the respective distances (jitter cancels in expectation).
        auto routes = router.announced_routes(vp.view, root, family, 16);
        const netsim::AnycastSite* fallback = nullptr;
        for (const auto& candidate : routes) {
          const netsim::AnycastSite& site = topology.sites[candidate.site_id];
          if (site.facility != impact.facility) {
            fallback = &site;
            break;
          }
        }
        ++impact.selections_moved;
        if (!fallback) continue;  // nowhere to go: counted as moved anyway
        double old_rtt =
            util::fiber_rtt_ms(util::haversine_km(vp.view.location,
                                                  selected.location)) +
            2.0;
        double new_rtt =
            util::fiber_rtt_ms(util::haversine_km(vp.view.location,
                                                  fallback->location)) +
            2.0;
        deltas.push_back(new_rtt - old_rtt);
      }
    }
  }
  impact.rtt_delta_ms = util::summarize(deltas);
  return impact;
}

}  // namespace rootsim::analysis
