#include "analysis/rssac_metrics.h"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/propagation.h"

namespace rootsim::analysis {

void replay_rssac_samples(const measure::Campaign& campaign,
                          const RssacOptions& options,
                          obs::SloCollector& collector) {
  const netsim::AnycastRouter& router = campaign.router();
  const measure::Schedule& schedule = campaign.schedule();
  util::UnixTime start = schedule.config().start;
  util::UnixTime end = schedule.config().end;

  // Publication latency reuses the propagation experiment (one zone edit);
  // each polled instance's delay is one Publication sample. The probed edit
  // is the mid-campaign 12h serial boundary, derived from the schedule so
  // every scenario measures propagation inside its own horizon.
  util::UnixTime edit = start + (end - start) / 2;
  edit -= edit % (12 * 3600);
  PropagationOptions propagation_options;
  propagation_options.max_instances_per_root = options.propagation_instances;
  auto propagation =
      measure_soa_propagation(campaign, edit, propagation_options);

  for (uint32_t root = 0; root < rss::kRootCount; ++root) {
    obs::SloSample sample;
    sample.root = static_cast<uint8_t>(root);
    for (const auto& vp : campaign.vantage_points()) {
      for (util::IpFamily family : {util::IpFamily::V4, util::IpFamily::V6}) {
        sample.v6 = family == util::IpFamily::V6;
        auto selection = router.prepare_selection(vp.view, root, family);
        netsim::RouteResult route = router.route(vp.view, root, family);
        sample.kind = obs::SloSample::Kind::Latency;
        sample.when = start;
        sample.value = route.rtt_ms;
        collector.record(sample);
        // Sample rounds: the probe fails when the selected site is dark.
        for (size_t s = 0; s < options.sampled_rounds; ++s) {
          uint64_t round =
              (s * 1009 + vp.view.vp_id) % schedule.round_count();
          uint32_t site =
              netsim::AnycastRouter::site_at_round(selection, round);
          sample.kind = obs::SloSample::Kind::Availability;
          sample.when = schedule.round_time(round);
          sample.ok = rss::site_available(site, sample.when, start, end,
                                          options.outages);
          collector.record(sample);
        }
      }
    }
    sample.v6 = false;
    sample.kind = obs::SloSample::Kind::Publication;
    sample.when = start;
    for (double delay_s : propagation.per_root[root].delays_s) {
      sample.value = delay_s;
      collector.record(sample);
    }
  }
}

RssacReport rssac_report_from_collector(const obs::SloCollector& collector) {
  RssacReport report;
  for (uint32_t root = 0; root < rss::kRootCount; ++root) {
    RootServiceMetrics& metrics = report.per_root[root];
    metrics.letter = static_cast<char>('a' + root);
    const obs::SloCollector::Cell v4 =
        collector.totals(static_cast<uint8_t>(root), false);
    const obs::SloCollector::Cell v6 =
        collector.totals(static_cast<uint8_t>(root), true);
    metrics.availability_v4 =
        v4.probes ? static_cast<double>(v4.answered) / v4.probes : 1.0;
    metrics.availability_v6 =
        v6.probes ? static_cast<double>(v6.answered) / v6.probes : 1.0;
    metrics.median_rtt_v4 = v4.rtt_us.quantile(0.5) / 1000.0;
    metrics.median_rtt_v6 = v6.rtt_us.quantile(0.5) / 1000.0;
    metrics.p95_rtt_v4 = v4.rtt_us.quantile(0.95) / 1000.0;
    metrics.p95_rtt_v6 = v6.rtt_us.quantile(0.95) / 1000.0;
    metrics.median_publication_latency_s = v4.publication_s.quantile(0.5);
    report.worst_availability =
        std::min({report.worst_availability, metrics.availability_v4,
                  metrics.availability_v6});
  }
  return report;
}

RssacReport compute_rssac_metrics(const measure::Campaign& campaign,
                                  const RssacOptions& options) {
  obs::SloCollector collector;
  replay_rssac_samples(campaign, options, collector);
  return rssac_report_from_collector(collector);
}

ClusterFailureImpact simulate_cluster_failure(const measure::Campaign& campaign) {
  ClusterFailureImpact impact;
  const netsim::Topology& topology = campaign.topology();
  const netsim::AnycastRouter& router = campaign.router();

  // Find the facility hosting the most distinct roots (the §5 cluster).
  std::map<netsim::FacilityId, std::set<uint32_t>> roots_at;
  for (const auto& site : topology.sites)
    roots_at[site.facility].insert(site.root_index);
  for (const auto& [facility, roots] : roots_at) {
    if (roots.size() > impact.roots_hosted) {
      impact.roots_hosted = roots.size();
      impact.facility = facility;
    }
  }

  std::vector<double> deltas;
  for (const auto& vp : campaign.vantage_points()) {
    for (uint32_t root = 0; root < rss::kRootCount; ++root) {
      for (util::IpFamily family : {util::IpFamily::V4, util::IpFamily::V6}) {
        ++impact.selections_total;
        netsim::RouteResult route = router.route(vp.view, root, family);
        const netsim::AnycastSite& selected = topology.sites[route.site_id];
        if (selected.facility != impact.facility) continue;
        // The selected site went dark: fail over to the best announced route
        // at a different facility. Compare like-with-like using the fiber
        // RTT of the respective distances (jitter cancels in expectation).
        auto routes = router.announced_routes(vp.view, root, family, 16);
        const netsim::AnycastSite* fallback = nullptr;
        for (const auto& candidate : routes) {
          const netsim::AnycastSite& site = topology.sites[candidate.site_id];
          if (site.facility != impact.facility) {
            fallback = &site;
            break;
          }
        }
        ++impact.selections_moved;
        if (!fallback) continue;  // nowhere to go: counted as moved anyway
        double old_rtt =
            util::fiber_rtt_ms(util::haversine_km(vp.view.location,
                                                  selected.location)) +
            2.0;
        double new_rtt =
            util::fiber_rtt_ms(util::haversine_km(vp.view.location,
                                                  fallback->location)) +
            2.0;
        deltas.push_back(new_rtt - old_rtt);
      }
    }
  }
  impact.rtt_delta_ms = util::summarize(deltas);
  return impact;
}

}  // namespace rootsim::analysis
