#include "analysis/zonemd_report.h"

#include "dns/zone_diff.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/strings.h"

namespace rootsim::analysis {

namespace {

std::string server_tag(const measure::ZoneAuditObservation& obs) {
  if (obs.root_index < 0) return "?";
  char letter = static_cast<char>('a' + obs.root_index);
  const char* family = obs.family == util::IpFamily::V4 ? "v4" : "v6";
  if (obs.old_b_address) return util::format("%c(old %s)", letter, family);
  return util::format("%c(%s)", letter, family);
}

std::string reason_of(dnssec::ValidationStatus status) {
  switch (status) {
    case dnssec::ValidationStatus::SignatureNotIncepted:
      return "Sig. not incepted";
    case dnssec::ValidationStatus::SignatureExpired:
      return "Signature expired";
    case dnssec::ValidationStatus::BogusSignature:
      return "Bogus Signature";
    default:
      return to_string(status);
  }
}

}  // namespace

ZonemdAuditReport summarize_zone_audit(
    const std::vector<measure::ZoneAuditObservation>& observations) {
  ZonemdAuditReport report;
  report.total_observations = observations.size();

  // Group failing observations by (reason, table2 vp bucket).
  struct Bucket {
    std::set<uint32_t> soas;
    util::UnixTime first = 0, last = 0;
    size_t count = 0;
    std::set<std::string> servers;
    std::set<int> vp_ids;
    bool all_servers = false;
  };
  std::map<std::pair<std::string, int>, Bucket> buckets;

  for (const auto& obs : observations) {
    if (obs.verdict == dnssec::ValidationStatus::Valid) {
      ++report.clean_observations;
      continue;
    }
    ++report.failing_observations;
    // Every failure class in Table 2 is detectable via ZONEMD verification
    // except when the ZONEMD record itself predates the rollout entirely.
    if (obs.zonemd != dnssec::ZonemdStatus::NoZonemd ||
        obs.verdict != dnssec::ValidationStatus::Valid)
      ++report.catchable_by_zonemd;
    std::string reason = reason_of(obs.verdict);
    // Clock-skew buckets group per VP; others group per VP bucket too, so
    // the key mirrors Table 2's row structure.
    Bucket& bucket = buckets[{reason, obs.table2_vp_id}];
    bucket.soas.insert(obs.soa_serial);
    if (bucket.count == 0 || obs.when < bucket.first) bucket.first = obs.when;
    if (obs.when > bucket.last) bucket.last = obs.when;
    ++bucket.count;
    bucket.servers.insert(server_tag(obs));
    bucket.vp_ids.insert(obs.table2_vp_id);
    if (obs.affects_all_servers || bucket.servers.size() >= 10)
      bucket.all_servers = true;
  }

  // Merge consecutive VP buckets with identical (reason, servers, soa count)
  // the way Table 2 prints "6-8" / "9-16".
  struct MergedRow {
    Table2Row row;
    std::set<int> vps;
    std::string servers_key;
  };
  std::vector<MergedRow> merged;
  for (const auto& [key, bucket] : buckets) {
    std::string servers = bucket.all_servers
                              ? "all"
                              : util::join({bucket.servers.begin(),
                                            bucket.servers.end()},
                                           ", ");
    bool absorbed = false;
    for (auto& m : merged) {
      if (m.row.reason == key.first && m.servers_key == servers &&
          m.row.distinct_soas == bucket.soas.size()) {
        m.vps.insert(bucket.vp_ids.begin(), bucket.vp_ids.end());
        m.row.observations += bucket.count;
        m.row.first_observed = std::min(m.row.first_observed, bucket.first);
        m.row.last_observed = std::max(m.row.last_observed, bucket.last);
        absorbed = true;
        break;
      }
    }
    if (absorbed) continue;
    MergedRow m;
    m.row.reason = key.first;
    m.row.distinct_soas = bucket.soas.size();
    m.row.first_observed = bucket.first;
    m.row.last_observed = bucket.last;
    m.row.observations = bucket.count;
    m.row.servers = servers;
    m.servers_key = servers;
    m.vps = bucket.vp_ids;
    merged.push_back(std::move(m));
  }
  for (auto& m : merged) {
    // Render VP id set as ranges ("6-8").
    std::vector<int> ids(m.vps.begin(), m.vps.end());
    std::string text;
    for (size_t i = 0; i < ids.size();) {
      size_t j = i;
      while (j + 1 < ids.size() && ids[j + 1] == ids[j] + 1) ++j;
      if (!text.empty()) text += ", ";
      text += j > i ? util::format("%d-%d", ids[i], ids[j])
                    : util::format("%d", ids[i]);
      i = j + 1;
    }
    m.row.vp_ids = text;
    report.rows.push_back(m.row);
  }
  std::sort(report.rows.begin(), report.rows.end(),
            [](const Table2Row& a, const Table2Row& b) {
              if (a.reason != b.reason) return a.reason < b.reason;
              return a.first_observed < b.first_observed;
            });
  return report;
}

std::string render_bitflip_example(const measure::Campaign& campaign) {
  // Produce one genuine corrupted transfer and print the affected RRSIG in
  // presentation format, before and after, Fig. 10-style. The showcased
  // transfer is the latest v6 bitflip in the campaign's fault plan (the
  // paper's g.root example); scenarios without one probe mid-campaign.
  const auto& vps = campaign.vantage_points();
  const auto& catalog = campaign.catalog();
  uint32_t root = 6;
  util::UnixTime when = 0;
  for (const auto& fault : campaign.fault_plan()) {
    if (fault.kind != measure::FaultEvent::Kind::Bitflip) continue;
    if (fault.family != util::IpFamily::V6 || fault.root_index < 0) continue;
    if (fault.when > when) {
      when = fault.when;
      root = static_cast<uint32_t>(fault.root_index);
    }
  }
  if (when == 0) {
    const auto& window = campaign.schedule().config();
    when = window.start + (window.end - window.start) / 2;
  }
  measure::Prober::FaultKnobs knobs;
  knobs.inject_bitflip = true;
  knobs.bitflip_seed = 7;  // seed chosen to hit an RRSIG signature byte
  measure::ProbeRecord clean = campaign.prober().probe(
      vps[0], catalog.server(root).ipv6, when,
      campaign.schedule().round_at(when));
  measure::ProbeRecord corrupt = campaign.prober().probe(
      vps[0], catalog.server(root).ipv6, when,
      campaign.schedule().round_at(when), knobs);
  if (!clean.axfr || !corrupt.axfr) return "(no transfer)";
  std::string out;
  out += "bitflip note: " + corrupt.axfr->bitflip_note + "\n\n";
  dns::ZoneDiff diff =
      dns::diff_records(clean.axfr->records, corrupt.axfr->records);
  if (diff.empty()) return "(transfer identical)";
  if (!diff.removed.empty())
    out += "as served (intact):\n  " + dns::record_to_string(diff.removed[0]) +
           "\n";
  if (!diff.added.empty())
    out += "as received (bitflipped):\n  " +
           dns::record_to_string(diff.added[0]) + "\n";
  return out;
}

}  // namespace rootsim::analysis
