#include "analysis/coverage.h"

#include <algorithm>
#include <map>

namespace rootsim::analysis {

CoverageReport compute_coverage(const measure::Campaign& campaign,
                                const CoverageOptions& options) {
  CoverageReport report;
  const netsim::Topology& topology = campaign.topology();
  const netsim::AnycastRouter& router = campaign.router();
  const auto& vps = campaign.vantage_points();
  size_t rounds = campaign.schedule().round_count();

  // Observed = union over VPs, families, and sampled rounds of the catchment.
  for (const auto& vp : vps) {
    for (uint32_t root = 0; root < rss::kRootCount; ++root) {
      for (util::IpFamily family : {util::IpFamily::V4, util::IpFamily::V6}) {
        auto selection = router.prepare_selection(vp.view, root, family);
        report.observed_sites.insert(selection.primary_site);
        // Churn exposes the secondary site if flips are likely enough over
        // the campaign; sample rounds rather than sweeping all of them.
        for (size_t s = 0; s < options.churn_sample_rounds; ++s) {
          uint64_t round = rounds > 0 ? (s * 997) % rounds : 0;
          report.observed_sites.insert(
              netsim::AnycastRouter::site_at_round(selection, round));
        }
      }
    }
  }

  for (const netsim::AnycastSite& site : topology.sites) {
    bool covered = report.observed_sites.count(site.id) > 0;
    RootCoverage& world = report.worldwide[site.root_index];
    world.letter = static_cast<char>('a' + site.root_index);
    RootCoverage& regional =
        report.per_region[static_cast<size_t>(site.region)][site.root_index];
    regional.letter = world.letter;
    CoverageCell& world_cell =
        site.type == netsim::SiteType::Global ? world.global : world.local;
    CoverageCell& region_cell =
        site.type == netsim::SiteType::Global ? regional.global : regional.local;
    ++world_cell.sites;
    ++region_cell.sites;
    if (covered) {
      ++world_cell.covered;
      ++region_cell.covered;
    }
  }
  return report;
}

IdentityMappingReport compute_identity_mapping(const measure::Campaign& campaign,
                                               const CoverageReport& coverage) {
  IdentityMappingReport report;
  const netsim::Topology& topology = campaign.topology();
  // Which roots publish only metro-level identifiers ({a,c,e,j}, §4.2 fn 2).
  auto metro_only = [](uint32_t root) {
    return root == 0 || root == 2 || root == 4 || root == 9;
  };
  // Count instances per (root, facility) to detect metro collisions.
  std::map<std::pair<uint32_t, netsim::FacilityId>, int> per_metro;
  for (const auto& site : topology.sites)
    ++per_metro[{site.root_index, site.facility}];

  for (uint32_t site_id : coverage.observed_sites) {
    const netsim::AnycastSite& site = topology.sites[site_id];
    ++report.observed_identifiers;
    // j.root's local-site identifiers do not match anything published
    // online (the paper's 75 unmapped j identifiers).
    bool unmappable = site.root_index == 9 &&
                      site.type == netsim::SiteType::Local;
    if (unmappable) {
      ++report.unmapped;
      ++report.unmapped_per_root[site.root_index];
      continue;
    }
    ++report.mapped;
    if (metro_only(site.root_index) &&
        per_metro[{site.root_index, site.facility}] > 1)
      ++report.metro_ambiguous;
  }
  return report;
}

std::string render_coverage_map(const measure::Campaign& campaign,
                                const CoverageReport& report, int root_index,
                                int width, int height) {
  std::vector<std::string> grid(static_cast<size_t>(height),
                                std::string(static_cast<size_t>(width), '.'));
  auto plot = [&](const util::GeoPoint& p, char c) {
    int x = static_cast<int>((p.lon_deg + 180.0) / 360.0 * (width - 1));
    int y = static_cast<int>((90.0 - p.lat_deg) / 180.0 * (height - 1));
    x = std::clamp(x, 0, width - 1);
    y = std::clamp(y, 0, height - 1);
    grid[static_cast<size_t>(y)][static_cast<size_t>(x)] = c;
  };
  for (const auto& site : campaign.topology().sites) {
    if (site.root_index != static_cast<uint32_t>(root_index)) continue;
    bool covered = report.observed_sites.count(site.id) > 0;
    char symbol = site.type == netsim::SiteType::Global ? (covered ? 'G' : 'g')
                                                        : (covered ? 'L' : 'l');
    plot(site.location, symbol);
  }
  std::string out;
  for (const auto& row : grid) {
    out += row;
    out += '\n';
  }
  return out;
}

}  // namespace rootsim::analysis
