// Site stability analysis (paper §4.2, Fig. 3).
//
// For every (VP, root, family) we replay the campaign's rounds and count
// changes: two subsequent measurements reaching different sites. The output
// is the per-root complementary eCDF of per-VP change counts plus the
// medians the paper highlights (b.root 8/8; g.root 36 v4 / 64 v6).
#pragma once

#include <array>

#include "measure/campaign.h"
#include "util/stats.h"

namespace rootsim::analysis {

struct RootStability {
  char letter = 'a';
  std::vector<double> changes_v4;  // per VP
  std::vector<double> changes_v6;
  double median_v4 = 0;
  double median_v6 = 0;
};

struct StabilityReport {
  std::array<RootStability, rss::kRootCount> per_root{};

  /// Complementary eCDF values at chosen thresholds (the Fig. 3 axes).
  struct CecdfPoint {
    double threshold;
    double fraction_v4;  // P[changes > threshold]
    double fraction_v6;
  };
  std::vector<CecdfPoint> cecdf(int root_index,
                                const std::vector<double>& thresholds) const;
};

struct StabilityOptions {
  /// Round subsampling stride (1 = every round). Change counts are scaled
  /// back to full-campaign estimates; stride > 1 trades tail resolution for
  /// speed in tests.
  size_t round_stride = 1;
};

StabilityReport compute_stability(const measure::Campaign& campaign,
                                  const StabilityOptions& options = {});

}  // namespace rootsim::analysis
