#include "analysis/colocation.h"

#include <algorithm>
#include <map>

namespace rootsim::analysis {

ColocationReport compute_colocation(const measure::Campaign& campaign,
                                    const ColocationOptions& options) {
  ColocationReport report;
  const netsim::AnycastRouter& router = campaign.router();
  uint64_t unique_counter = 1;  // synthetic ids for missed hops

  size_t vps_with_colocation = 0;
  for (const auto& vp : campaign.vantage_points()) {
    VpColocation row;
    row.vp_id = vp.view.vp_id;
    row.region = vp.view.region;
    int max_cluster = 1;
    for (util::IpFamily family : {util::IpFamily::V4, util::IpFamily::V6}) {
      std::map<netsim::RouterId, int> hop_counts;
      int total = 0;
      for (uint32_t root = 0; root < rss::kRootCount; ++root) {
        netsim::RouteResult route = router.route(vp.view, root, family);
        netsim::RouterId hop = route.second_to_last_hop;
        if (hop == 0) {
          // Traceroute missed the hop.
          if (options.missed_hops_are_unique)
            hop = 0xFFFF000000000000ULL + unique_counter++;
          else
            continue;  // ablation: drop the measurement entirely
        }
        ++hop_counts[hop];
        ++total;
      }
      int unique = static_cast<int>(hop_counts.size());
      int reduced = total - unique;
      for (const auto& [hop, count] : hop_counts)
        max_cluster = std::max(max_cluster, count);
      if (family == util::IpFamily::V4)
        row.reduced_redundancy_v4 = reduced;
      else
        row.reduced_redundancy_v6 = reduced;
    }
    row.max_cluster = max_cluster;
    size_t region = static_cast<size_t>(row.region);
    report.histogram_v4[region].add(row.reduced_redundancy_v4);
    report.histogram_v6[region].add(row.reduced_redundancy_v6);
    if (row.reduced_redundancy_v4 >= 1 || row.reduced_redundancy_v6 >= 1)
      ++vps_with_colocation;
    report.max_colocated_roots =
        std::max(report.max_colocated_roots, row.max_cluster);
    report.per_vp.push_back(row);
  }
  report.fraction_vps_with_colocation =
      report.per_vp.empty()
          ? 0
          : static_cast<double>(vps_with_colocation) /
                static_cast<double>(report.per_vp.size());
  return report;
}

}  // namespace rootsim::analysis
