#include "analysis/propagation.h"

#include "rss/server.h"

namespace rootsim::analysis {

namespace {

// One real SOA query against an instance; returns the served serial.
uint32_t soa_serial_at(const rss::RootServerInstance& instance,
                       util::UnixTime when, size_t& query_counter) {
  dns::Message query = dns::make_query(
      static_cast<uint16_t>(when & 0xFFFF), dns::Name(), dns::RRType::SOA);
  dns::Message response = instance.handle_udp_query(query, when);
  ++query_counter;
  for (const auto& rr : response.answers)
    if (const auto* soa = std::get_if<dns::SoaData>(&rr.rdata))
      return soa->serial;
  return 0;
}

}  // namespace

PropagationReport measure_soa_propagation(const measure::Campaign& campaign,
                                          util::UnixTime serial_bump,
                                          const PropagationOptions& options) {
  PropagationReport report;
  report.serial_bump = serial_bump;
  report.old_serial = campaign.authority().serial_at(serial_bump - 1);
  report.new_serial = campaign.authority().serial_at(serial_bump);

  const netsim::Topology& topology = campaign.topology();
  for (uint32_t root = 0; root < rss::kRootCount; ++root) {
    RootPropagation& row = report.per_root[root];
    row.letter = static_cast<char>('a' + root);
    const auto& sites = topology.sites_by_root[root];
    size_t step = std::max<size_t>(1, sites.size() / options.max_instances_per_root);
    for (size_t i = 0; i < sites.size(); i += step) {
      const netsim::AnycastSite& site = topology.sites[sites[i]];
      rss::InstanceBehavior behavior;
      behavior.propagation_lag_s = rss::site_propagation_lag_s(site.id);
      rss::RootServerInstance instance(campaign.authority(), campaign.catalog(),
                                       root, site.identity, behavior);
      // Adaptive per-second search: bisect [bump, bump + window] for the
      // first second at which the instance serves the new serial.
      util::UnixTime lo = serial_bump;
      util::UnixTime hi = serial_bump + options.search_window_s;
      if (soa_serial_at(instance, hi, row.soa_queries_sent) !=
          report.new_serial) {
        row.delays_s.push_back(static_cast<double>(options.search_window_s));
        continue;
      }
      if (soa_serial_at(instance, lo, row.soa_queries_sent) ==
          report.new_serial) {
        row.delays_s.push_back(0);
        continue;
      }
      while (hi - lo > 1) {
        util::UnixTime mid = lo + (hi - lo) / 2;
        if (soa_serial_at(instance, mid, row.soa_queries_sent) ==
            report.new_serial)
          hi = mid;
        else
          lo = mid;
      }
      row.delays_s.push_back(static_cast<double>(hi - serial_bump));
    }
    row.summary = util::summarize(row.delays_s);
    report.total_queries += row.soa_queries_sent;
  }
  return report;
}

}  // namespace rootsim::analysis
