// ZONEMD audit reporting (paper §7, Table 2).
//
// Buckets the campaign's zone-audit observations into the paper's Table 2
// rows: reason, number of distinct SOAs, first/last observation, observation
// count, affected servers, VP ids.
#pragma once

#include <string>
#include <vector>

#include "measure/campaign.h"

namespace rootsim::analysis {

struct Table2Row {
  std::string reason;
  size_t distinct_soas = 0;
  util::UnixTime first_observed = 0;
  util::UnixTime last_observed = 0;
  size_t observations = 0;
  std::string servers;  // "all", "d(v6)", "g(v6), b(old v4)", ...
  std::string vp_ids;   // "1", "6-8", ...
};

struct ZonemdAuditReport {
  std::vector<Table2Row> rows;
  size_t total_observations = 0;
  size_t clean_observations = 0;
  size_t failing_observations = 0;
  /// How many of the failing transfers ZONEMD validation would have caught
  /// had the verifiable record been in place (the paper's §7 argument).
  size_t catchable_by_zonemd = 0;
};

ZonemdAuditReport summarize_zone_audit(
    const std::vector<measure::ZoneAuditObservation>& observations);

/// Renders the before/after presentation lines of a bitflipped RRSIG — the
/// paper's Fig. 10 demonstration — for the first bogus transfer in the audit.
std::string render_bitflip_example(const measure::Campaign& campaign);

}  // namespace rootsim::analysis
