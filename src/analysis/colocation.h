// Server co-location analysis (paper §5, Fig. 4, RQ1).
//
// For each vantage point and address family, traceroute all 13 roots and
// compare second-to-last hops. Reduced redundancy = total roots - unique
// second-to-last hops; hops that traceroute missed count as unique, making
// the result a lower bound (the paper's rule).
#pragma once

#include <array>

#include "measure/campaign.h"
#include "util/stats.h"

namespace rootsim::analysis {

struct VpColocation {
  uint32_t vp_id = 0;
  util::Region region = util::Region::Europe;
  int reduced_redundancy_v4 = 0;
  int reduced_redundancy_v6 = 0;
  /// Size of the largest co-located group seen by this VP (any family).
  int max_cluster = 1;
};

struct ColocationReport {
  std::vector<VpColocation> per_vp;
  /// Histograms per region per family (Fig. 4 panels).
  std::array<util::IntHistogram, util::kRegionCount> histogram_v4{};
  std::array<util::IntHistogram, util::kRegionCount> histogram_v6{};
  /// Headline: fraction of VPs observing co-location of >= 2 roots.
  double fraction_vps_with_colocation = 0;
  int max_colocated_roots = 0;

  double region_mean_v4(util::Region r) const {
    return histogram_v4[static_cast<size_t>(r)].mean();
  }
  double region_mean_v6(util::Region r) const {
    return histogram_v6[static_cast<size_t>(r)].mean();
  }
};

struct ColocationOptions {
  /// If true, hops missed by traceroute are treated as unique (the paper's
  /// lower-bound rule). Turning this off is the ablation: it shows how much
  /// reduced redundancy the rule hides.
  bool missed_hops_are_unique = true;
};

ColocationReport compute_colocation(const measure::Campaign& campaign,
                                    const ColocationOptions& options = {});

}  // namespace rootsim::analysis
