// RSSAC047-style service metrics computed from the campaign's vantage
// points, tying the measurement back to the governance goals (RSSAC037)
// the paper's introduction frames the root server system with:
//   * availability     — fraction of probes answered per root (each root's
//     selected site may be in an outage window);
//   * response latency — median/95th RTT per root per family;
//   * publication latency — how long a new serial takes to reach instances
//     (from the propagation analysis);
//   * clustered-site stress test — the §5 what-if: take the most co-located
//     facility offline and measure how many (VP, root) selections move and
//     how much their RTT changes.
//
// The batch path is a *replay over the streaming SLO collector* (obs/slo.h):
// compute_rssac_metrics feeds its sampling plan into an SloCollector sample
// by sample and reads the report out of the collector's end-of-campaign
// totals. The post-hoc numbers and the online monitor therefore share one
// accumulator implementation and cannot drift — any change to how a metric
// is defined changes both or neither (pinned by the replay-equivalence
// test).
#pragma once

#include <array>

#include "measure/campaign.h"
#include "obs/slo.h"
#include "rss/outages.h"
#include "util/stats.h"

namespace rootsim::analysis {

struct RootServiceMetrics {
  char letter = 'a';
  double availability_v4 = 1.0;
  double availability_v6 = 1.0;
  double median_rtt_v4 = 0;
  double median_rtt_v6 = 0;
  double p95_rtt_v4 = 0;
  double p95_rtt_v6 = 0;
  double median_publication_latency_s = 0;
};

struct RssacReport {
  std::array<RootServiceMetrics, rss::kRootCount> per_root{};
  /// RSSAC047's availability target is 99.96% for the service as a whole.
  double worst_availability = 1.0;
};

struct RssacOptions {
  rss::OutageModelConfig outages;
  /// Rounds sampled per (VP, root, family) for availability estimation.
  size_t sampled_rounds = 40;
  /// Instances sampled per root for publication latency.
  size_t propagation_instances = 16;
};

/// Streams the batch sampling plan into `collector`: one Availability sample
/// per sampled (VP, root, family, round) — stamped with the round's
/// simulated time, so the collector buckets them exactly as live probes —
/// one Latency sample per (VP, root, family) steady route, and the
/// propagation experiment's per-instance delays as Publication samples
/// (recorded on the v4 stream; the batch metric has no family dimension).
void replay_rssac_samples(const measure::Campaign& campaign,
                          const RssacOptions& options,
                          obs::SloCollector& collector);

/// Reads the RSSAC047 report out of a collector's cumulative end-of-campaign
/// totals (SloCollector::totals) — works on a replayed collector and on one
/// fed live by Campaign::run_slo_timeline alike.
RssacReport rssac_report_from_collector(const obs::SloCollector& collector);

/// replay_rssac_samples + rssac_report_from_collector over a fresh collector.
RssacReport compute_rssac_metrics(const measure::Campaign& campaign,
                                  const RssacOptions& options = {});

/// The §5 stress test: all instances at the facility hosting the most roots
/// go dark; reports how many (VP, root, family) selections shift and the
/// RTT deltas those clients experience.
struct ClusterFailureImpact {
  netsim::FacilityId facility = 0;
  size_t roots_hosted = 0;
  size_t selections_total = 0;
  size_t selections_moved = 0;
  util::Summary rtt_delta_ms;  // over moved selections (new - old)
};

ClusterFailureImpact simulate_cluster_failure(const measure::Campaign& campaign);

}  // namespace rootsim::analysis
