// RSSAC047-style service metrics computed from the campaign's vantage
// points, tying the measurement back to the governance goals (RSSAC037)
// the paper's introduction frames the root server system with:
//   * availability     — fraction of probes answered per root (each root's
//     selected site may be in an outage window);
//   * response latency — median/95th RTT per root per family;
//   * publication latency — how long a new serial takes to reach instances
//     (from the propagation analysis);
//   * clustered-site stress test — the §5 what-if: take the most co-located
//     facility offline and measure how many (VP, root) selections move and
//     how much their RTT changes.
#pragma once

#include <array>

#include "measure/campaign.h"
#include "rss/outages.h"
#include "util/stats.h"

namespace rootsim::analysis {

struct RootServiceMetrics {
  char letter = 'a';
  double availability_v4 = 1.0;
  double availability_v6 = 1.0;
  double median_rtt_v4 = 0;
  double median_rtt_v6 = 0;
  double p95_rtt_v4 = 0;
  double p95_rtt_v6 = 0;
  double median_publication_latency_s = 0;
};

struct RssacReport {
  std::array<RootServiceMetrics, rss::kRootCount> per_root{};
  /// RSSAC047's availability target is 99.96% for the service as a whole.
  double worst_availability = 1.0;
};

struct RssacOptions {
  rss::OutageModelConfig outages;
  /// Rounds sampled per (VP, root, family) for availability estimation.
  size_t sampled_rounds = 40;
  /// Instances sampled per root for publication latency.
  size_t propagation_instances = 16;
};

RssacReport compute_rssac_metrics(const measure::Campaign& campaign,
                                  const RssacOptions& options = {});

/// The §5 stress test: all instances at the facility hosting the most roots
/// go dark; reports how many (VP, root, family) selections shift and the
/// RTT deltas those clients experience.
struct ClusterFailureImpact {
  netsim::FacilityId facility = 0;
  size_t roots_hosted = 0;
  size_t selections_total = 0;
  size_t selections_moved = 0;
  util::Summary rtt_delta_ms;  // over moved selections (new - old)
};

ClusterFailureImpact simulate_cluster_failure(const measure::Campaign& campaign);

}  // namespace rootsim::analysis
