#include "analysis/distance.h"

#include <algorithm>
#include <map>

#include "util/strings.h"

namespace rootsim::analysis {

DistanceReport compute_distance(const measure::Campaign& campaign,
                                int root_index, util::IpFamily family) {
  DistanceReport report;
  report.letter = static_cast<char>('a' + root_index);
  report.family = family;
  const netsim::AnycastRouter& router = campaign.router();
  const netsim::Topology& topology = campaign.topology();

  for (const auto& vp : campaign.vantage_points()) {
    DistanceSample sample;
    sample.vp_id = vp.view.vp_id;
    sample.region = vp.view.region;
    const netsim::AnycastSite& closest =
        router.closest_global_site(vp.view, static_cast<uint32_t>(root_index));
    sample.closest_global_km = util::haversine_km(vp.view.location, closest.location);
    netsim::RouteResult route =
        router.route(vp.view, static_cast<uint32_t>(root_index), family);
    const netsim::AnycastSite& actual = topology.sites[route.site_id];
    sample.actual_km = util::haversine_km(vp.view.location, actual.location);
    sample.via_local_site = actual.type == netsim::SiteType::Local;
    report.samples.push_back(sample);
  }
  return report;
}

double DistanceReport::fraction_optimal(double tolerance_km) const {
  if (samples.empty()) return 0;
  size_t optimal = 0;
  for (const auto& sample : samples)
    if (sample.inflation_km() <= tolerance_km) ++optimal;
  return static_cast<double>(optimal) / static_cast<double>(samples.size());
}

double DistanceReport::fraction_clients_below(double threshold_km) const {
  if (samples.empty()) return 0;
  size_t below = 0;
  for (const auto& sample : samples)
    if (sample.inflation_km() < threshold_km) ++below;
  return static_cast<double>(below) / static_cast<double>(samples.size());
}

std::string DistanceReport::render_heatmap(double max_km, int bins) const {
  // Rows: distance to actual site (top = far). Columns: distance to closest
  // global site. Density rendered as ' .:+#@'.
  std::vector<std::vector<int>> grid(static_cast<size_t>(bins),
                                     std::vector<int>(static_cast<size_t>(bins), 0));
  int peak = 1;
  for (const auto& sample : samples) {
    int col = std::min(bins - 1, static_cast<int>(sample.closest_global_km /
                                                  max_km * bins));
    int row = std::min(bins - 1, static_cast<int>(sample.actual_km / max_km * bins));
    int& cell = grid[static_cast<size_t>(bins - 1 - row)][static_cast<size_t>(col)];
    ++cell;
    peak = std::max(peak, cell);
  }
  const char* shades = " .:+#@";
  std::string out;
  for (int row = 0; row < bins; ++row) {
    out += util::format("%7.0f |", max_km * (bins - 1 - row) / bins);
    for (int col = 0; col < bins; ++col) {
      int value = grid[static_cast<size_t>(row)][static_cast<size_t>(col)];
      int shade =
          value == 0 ? 0
                     : 1 + static_cast<int>(4.0 * std::min(1.0, std::log1p(value) /
                                                                    std::log1p(peak)));
      out += shades[shade];
      // Mark the diagonal so optimal routing is visible.
      if (col == bins - 1 - row) out.back() = value == 0 ? '\\' : out.back();
    }
    out += '\n';
  }
  out += "         ";
  out.append(static_cast<size_t>(bins), '-');
  out += util::format("\n         0 km  ->  closest global site (max %.0f km)\n",
                      max_km);
  return out;
}

}  // namespace rootsim::analysis
