// Coverage analysis (paper §4.2, Tables 1 & 4, Figs. 1 & 11).
//
// Replays the campaign's instance-identification method: every hostname.bind
// / id.server answer observed from any VP in any round is matched against
// the ground-truth site list; a site is "covered" when at least one VP's
// catchment reaches it at some point of the campaign.
#pragma once

#include <array>
#include <set>
#include <vector>

#include "measure/campaign.h"

namespace rootsim::analysis {

struct CoverageCell {
  int sites = 0;
  int covered = 0;
  double percent() const {
    return sites > 0 ? 100.0 * covered / sites : 0.0;
  }
};

struct RootCoverage {
  char letter = 'a';
  CoverageCell global;
  CoverageCell local;
  CoverageCell total() const {
    return {global.sites + local.sites, global.covered + local.covered};
  }
};

struct CoverageReport {
  /// Worldwide per root (Table 1).
  std::array<RootCoverage, rss::kRootCount> worldwide{};
  /// Per region per root (Table 4).
  std::array<std::array<RootCoverage, rss::kRootCount>, util::kRegionCount>
      per_region{};
  /// Site ids observed at least once (for the Fig. 11 maps).
  std::set<uint32_t> observed_sites;
};

struct CoverageOptions {
  /// Rounds sampled when probing catchment churn for extra observed sites
  /// (0 = steady-state catchments only).
  size_t churn_sample_rounds = 64;
};

CoverageReport compute_coverage(const measure::Campaign& campaign,
                                const CoverageOptions& options = {});

/// §4.2's identifier-to-site matching step. Not every hostname.bind answer
/// maps to a published site: {a,c,e,j}.root report only IATA-style metro
/// codes (instances in the same metro become indistinguishable), and some
/// j.root identifiers map to nothing published at all — the paper matched
/// 1,469 of 1,604 observed identifiers, with 75 of the 135 failures from
/// j.root.
struct IdentityMappingReport {
  size_t observed_identifiers = 0;
  size_t mapped = 0;
  size_t unmapped = 0;
  /// Unmapped count per root (j dominates).
  std::array<size_t, rss::kRootCount> unmapped_per_root{};
  /// Identifiers that collapsed with another instance in the same metro
  /// (the {a,c,e,j} ambiguity).
  size_t metro_ambiguous = 0;
};

IdentityMappingReport compute_identity_mapping(const measure::Campaign& campaign,
                                               const CoverageReport& coverage);

/// Renders an ASCII world map of one root's sites (Fig. 11 style): 'G'/'L'
/// covered global/local, 'g'/'l' unobserved.
std::string render_coverage_map(const measure::Campaign& campaign,
                                const CoverageReport& report, int root_index,
                                int width = 72, int height = 20);

}  // namespace rootsim::analysis
