#include "analysis/traffic_report.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/strings.h"

namespace rootsim::analysis {

std::vector<BrootShare> broot_shares(
    const std::vector<traffic::DailyTraffic>& days) {
  std::vector<BrootShare> out;
  out.reserve(days.size());
  for (const auto& day : days) {
    BrootShare share;
    share.day = day.day;
    double total = 0;
    for (const auto& [key, flows] : day.flows)
      if (key.root_index == 1) total += flows;
    if (total > 0) {
      auto value = [&](util::IpFamily family, bool old_subnet) {
        auto it = day.flows.find({1, family, old_subnet});
        return it == day.flows.end() ? 0.0 : it->second / total;
      };
      share.v4_old = value(util::IpFamily::V4, true);
      share.v4_new = value(util::IpFamily::V4, false);
      share.v6_old = value(util::IpFamily::V6, true);
      share.v6_new = value(util::IpFamily::V6, false);
    }
    out.push_back(share);
  }
  return out;
}

ShiftRatio shift_ratio(const std::vector<traffic::DailyTraffic>& days) {
  double v4_old = 0, v4_new = 0, v6_old = 0, v6_new = 0;
  for (const auto& day : days) {
    for (const auto& [key, flows] : day.flows) {
      if (key.root_index != 1) continue;
      if (key.family == util::IpFamily::V4)
        (key.old_b_subnet ? v4_old : v4_new) += flows;
      else
        (key.old_b_subnet ? v6_old : v6_new) += flows;
    }
  }
  ShiftRatio ratio;
  ratio.v4 = (v4_old + v4_new) > 0 ? v4_new / (v4_old + v4_new) : 0;
  ratio.v6 = (v6_old + v6_new) > 0 ? v6_new / (v6_old + v6_new) : 0;
  return ratio;
}

RootShares root_shares(const std::vector<traffic::DailyTraffic>& days) {
  RootShares shares;
  double total = 0;
  for (const auto& day : days)
    for (const auto& [key, flows] : day.flows) {
      shares.share[static_cast<size_t>(key.root_index)] += flows;
      total += flows;
    }
  if (total > 0)
    for (auto& share : shares.share) share /= total;
  return shares;
}

std::vector<ClientFlowCdf> client_flow_cdfs(
    const std::vector<traffic::ClientDayRecord>& records, int days) {
  // Collect per-subnet distribution of per-client-day flow counts.
  std::map<traffic::SubnetKey, std::vector<double>> flows_by_subnet;
  std::map<traffic::SubnetKey, size_t> single_contacts;
  for (const auto& record : records) {
    flows_by_subnet[record.subnet].push_back(record.flows);
    if (record.flows <= 1.5) ++single_contacts[record.subnet];
  }
  std::vector<double> thresholds;
  for (double t = 1; t <= 100000; t *= std::sqrt(10.0)) thresholds.push_back(t);

  std::vector<ClientFlowCdf> out;
  for (auto& [subnet, flows] : flows_by_subnet) {
    ClientFlowCdf cdf;
    cdf.subnet = subnet;
    cdf.thresholds = thresholds;
    std::sort(flows.begin(), flows.end());
    for (double threshold : thresholds) {
      auto it = std::upper_bound(flows.begin(), flows.end(), threshold);
      cdf.cumulative_fraction.push_back(
          static_cast<double>(it - flows.begin()) /
          static_cast<double>(flows.size()));
    }
    cdf.single_contact_fraction =
        static_cast<double>(single_contacts[subnet]) /
        static_cast<double>(flows.size());
    out.push_back(std::move(cdf));
  }
  (void)days;
  return out;
}

std::string render_share_series(const std::vector<BrootShare>& days) {
  // Four stacked sparklines, one per (family, subnet age).
  auto spark = [&](auto getter) {
    const char* levels = " _.-=#";
    std::string line;
    for (const auto& day : days) {
      double v = std::clamp(getter(day), 0.0, 1.0);
      line += levels[static_cast<size_t>(v * 4.999)];
    }
    return line;
  };
  std::string out;
  out += "v4new |" + spark([](const BrootShare& s) { return s.v4_new; }) + "|\n";
  out += "v4old |" + spark([](const BrootShare& s) { return s.v4_old; }) + "|\n";
  out += "v6new |" + spark([](const BrootShare& s) { return s.v6_new; }) + "|\n";
  out += "v6old |" + spark([](const BrootShare& s) { return s.v6_old; }) + "|\n";
  if (!days.empty())
    out += util::format("       %s .. %s (%zu buckets)\n",
                        util::format_date(days.front().day).c_str(),
                        util::format_date(days.back().day).c_str(), days.size());
  return out;
}

}  // namespace rootsim::analysis
