// Passive traffic reporting (paper §6 + Appendix D: Figs. 7, 8, 9, 12, 13).
//
// Turns collector output into the normalized per-day series the paper plots
// and the headline adoption statistics (in-family shift ratios, regional
// IPv6 eagerness).
#pragma once

#include <string>
#include <vector>

#include "traffic/collectors.h"

namespace rootsim::analysis {

/// One day of normalized b.root traffic (Fig. 7 / Fig. 9 series).
struct BrootShare {
  util::UnixTime day = 0;
  double v4_old = 0;
  double v4_new = 0;
  double v6_old = 0;
  double v6_new = 0;
};

std::vector<BrootShare> broot_shares(const std::vector<traffic::DailyTraffic>& days);

/// In-family shift ratio over a window: new / (new + old), per family
/// (paper: ISP 87.1% v4, 96.3% v6; IXP-EU 60.8% v6, IXP-NA 16.5% v6).
struct ShiftRatio {
  double v4 = 0;
  double v6 = 0;
};
ShiftRatio shift_ratio(const std::vector<traffic::DailyTraffic>& days);

/// Normalized per-root traffic shares over a window (Figs. 12/13 stack).
struct RootShares {
  std::array<double, 13> share{};
};
RootShares root_shares(const std::vector<traffic::DailyTraffic>& days);

/// Fig. 8: mean number of unique client prefixes per day whose daily flow
/// count to a subnet is <= x, as a CDF over log-spaced thresholds.
struct ClientFlowCdf {
  traffic::SubnetKey subnet;
  std::vector<double> thresholds;  // flows per client per day
  std::vector<double> cumulative_fraction;
  double single_contact_fraction = 0;  // clients with exactly ~1 flow/day
};

std::vector<ClientFlowCdf> client_flow_cdfs(
    const std::vector<traffic::ClientDayRecord>& records, int days);

/// Text sparkline of a daily share series (for the bench output).
std::string render_share_series(const std::vector<BrootShare>& days);

}  // namespace rootsim::analysis
