// Zone-distribution (synchronization) measurement — the future-work
// experiment of the paper's Appendix E: "it would be preferable to issue
// higher frequency measurements, ideally up to a per-second resolution...
// limited to, e.g., SOA records".
//
// Around a zone edit, every instance of every root is polled with real SOA
// queries at one-second resolution (adaptively bisected — the instance's
// serving state is deterministic, so bisection visits the same switch point
// per-second polling would) to find when the new serial appears. The output
// is the per-root distribution of propagation delays.
#pragma once

#include <array>

#include "measure/campaign.h"
#include "util/stats.h"

namespace rootsim::analysis {

struct RootPropagation {
  char letter = 'a';
  std::vector<double> delays_s;  // per polled instance
  util::Summary summary;
  size_t soa_queries_sent = 0;
};

struct PropagationReport {
  util::UnixTime serial_bump = 0;
  uint32_t old_serial = 0;
  uint32_t new_serial = 0;
  std::array<RootPropagation, rss::kRootCount> per_root{};
  size_t total_queries = 0;
};

struct PropagationOptions {
  /// Cap on instances polled per root (the biggest deployments have 345).
  size_t max_instances_per_root = 64;
  /// Longest delay searched for (instances slower than this are reported at
  /// the cap).
  int64_t search_window_s = 3600;
};

/// Measures propagation of the zone edit at `serial_bump` (must be a
/// 00:00/12:00 edit boundary of the simulated authority).
PropagationReport measure_soa_propagation(const measure::Campaign& campaign,
                                          util::UnixTime serial_bump,
                                          const PropagationOptions& options = {});

}  // namespace rootsim::analysis
