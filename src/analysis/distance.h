// Geographic distance / route inflation analysis (paper §6, Fig. 5).
//
// For each (VP, root, family) request, records the distance to the selected
// site vs. the distance to the geographically closest *global* site.
// Requests on the diagonal reached their closest global replica; below it,
// an even closer local replica; above it, a suboptimally distant one.
#pragma once

#include <vector>

#include "measure/campaign.h"

namespace rootsim::analysis {

struct DistanceSample {
  uint32_t vp_id = 0;
  util::Region region = util::Region::Europe;
  double closest_global_km = 0;
  double actual_km = 0;
  bool via_local_site = false;
  double inflation_km() const { return actual_km - closest_global_km; }
};

struct DistanceReport {
  char letter = 'a';
  util::IpFamily family = util::IpFamily::V4;
  std::vector<DistanceSample> samples;

  /// Fraction of requests routed to the closest global replica or closer
  /// (inflation <= tolerance_km) — the paper reports 78-82% for b/m.root.
  double fraction_optimal(double tolerance_km = 150.0) const;
  /// Fraction of clients with mean extra distance below a threshold
  /// (the paper: 79.5% of b.root clients < 1,000 km).
  double fraction_clients_below(double threshold_km) const;
  /// 2D histogram bucketed for terminal rendering (Fig. 5 heatmap).
  std::string render_heatmap(double max_km = 15000, int bins = 24) const;
};

DistanceReport compute_distance(const measure::Campaign& campaign,
                                int root_index, util::IpFamily family);

}  // namespace rootsim::analysis
