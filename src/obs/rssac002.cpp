#include "obs/rssac002.h"

#include <bit>
#include <cmath>
#include <cstdio>

#include "obs/metrics.h"  // json_escape
#include "util/rng.h"
#include "util/strings.h"

namespace rootsim::obs {

void UniqueSourceSketch::insert(uint64_t source_id) {
  // splitmix64 as the hash: deterministic, well-mixed, already in-tree.
  uint64_t state = source_id;
  const uint64_t hash = util::splitmix64(state);
  const uint64_t bit = hash % kBits;
  words_[bit / 64] |= uint64_t{1} << (bit % 64);
}

void UniqueSourceSketch::merge_from(const UniqueSourceSketch& other) {
  for (size_t i = 0; i < kBits / 64; ++i) words_[i] |= other.words_[i];
}

uint64_t UniqueSourceSketch::bits_set() const {
  uint64_t set = 0;
  for (uint64_t word : words_) set += std::popcount(word);
  return set;
}

uint64_t UniqueSourceSketch::estimate() const {
  const uint64_t zeros = kBits - bits_set();
  const double m = static_cast<double>(kBits);
  if (zeros == 0) return static_cast<uint64_t>(std::llround(m * std::log(m)));
  return static_cast<uint64_t>(
      std::llround(m * std::log(m / static_cast<double>(zeros))));
}

void Rssac002Collector::Day::merge_from(const Day& other) {
  for (int proto = 0; proto < 2; ++proto)
    for (int family = 0; family < 2; ++family) {
      queries[proto][family] += other.queries[proto][family];
      responses[proto][family] += other.responses[proto][family];
    }
  for (size_t i = 0; i <= kRcodeSlots; ++i) rcodes[i] += other.rcodes[i];
  truncated += other.truncated;
  axfr_served += other.axfr_served;
  query_size.merge_from(other.query_size);
  udp_response_size.merge_from(other.udp_response_size);
  tcp_response_size.merge_from(other.tcp_response_size);
  sources[0].merge_from(other.sources[0]);
  sources[1].merge_from(other.sources[1]);
}

uint64_t Rssac002Collector::Day::total_queries() const {
  uint64_t total = 0;
  for (int proto = 0; proto < 2; ++proto)
    for (int family = 0; family < 2; ++family) total += queries[proto][family];
  return total;
}

uint64_t Rssac002Collector::Day::total_responses() const {
  uint64_t total = 0;
  for (int proto = 0; proto < 2; ++proto)
    for (int family = 0; family < 2; ++family)
      total += responses[proto][family];
  return total;
}

void Rssac002Collector::record(const Rssac002Sample& sample) {
  std::lock_guard<std::mutex> lock(mu_);
  Day& day = days_[{std::string(sample.instance), util::day_start(sample.when)}];
  const int family = sample.v6 ? 1 : 0;
  day.queries[0][family] += sample.udp_queries;
  day.queries[1][family] += sample.tcp_queries;
  // In the simulation every query the server receives is answered; the
  // responses a lossy path then eats were still *sent* (RSSAC002 counts the
  // server's side of the wire).
  day.responses[0][family] += sample.udp_queries;
  day.responses[1][family] += sample.tcp_queries;
  if (sample.truncated) ++day.truncated;
  if (sample.axfr && sample.delivered) ++day.axfr_served;
  if (sample.udp_queries || sample.tcp_queries) {
    day.query_size.observe(sample.query_bytes);
    day.sources[family].insert(sample.source_id);
  }
  if (sample.delivered) {
    const size_t slot = std::min<size_t>(sample.rcode, Day::kRcodeSlots);
    ++day.rcodes[slot];
    (sample.final_tcp ? day.tcp_response_size : day.udp_response_size)
        .observe(sample.response_bytes);
  }
}

void Rssac002Collector::merge_from(const Rssac002Collector& other) {
  // Snapshot the source under its own lock, fold under ours; the locks are
  // never held together (same discipline as MetricsRegistry::merge_from).
  auto records = other.snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, day] : records) days_[key].merge_from(day);
}

void Rssac002Collector::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  days_.clear();
}

bool Rssac002Collector::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return days_.empty();
}

size_t Rssac002Collector::record_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return days_.size();
}

std::vector<std::pair<std::pair<std::string, util::UnixTime>,
                      Rssac002Collector::Day>>
Rssac002Collector::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {days_.begin(), days_.end()};
}

std::string Rssac002Collector::to_jsonl(const std::string& scenario) const {
  std::string out;
  if (!scenario.empty()) out += "{\"scenario\":\"" + scenario + "\"}\n";
  for (const auto& [key, day] : snapshot()) {
    const auto& [instance, day_start] = key;
    out += "{\"instance\":\"" + json_escape(instance) + "\"";
    out += ",\"day\":\"" + util::format_date(day_start) + "\"";
    static const char* kProto[2] = {"udp", "tcp"};
    static const char* kFamily[2] = {"ipv4", "ipv6"};
    for (int proto = 0; proto < 2; ++proto)
      for (int family = 0; family < 2; ++family)
        out += util::format(
            ",\"dns-%s-queries-received-%s\":%llu", kProto[proto],
            kFamily[family],
            static_cast<unsigned long long>(day.queries[proto][family]));
    for (int proto = 0; proto < 2; ++proto)
      for (int family = 0; family < 2; ++family)
        out += util::format(
            ",\"dns-%s-responses-sent-%s\":%llu", kProto[proto],
            kFamily[family],
            static_cast<unsigned long long>(day.responses[proto][family]));
    out += ",\"rcode-volume\":{";
    bool first = true;
    for (size_t slot = 0; slot <= Day::kRcodeSlots; ++slot) {
      if (!day.rcodes[slot]) continue;
      if (!first) out += ",";
      first = false;
      out += slot == Day::kRcodeSlots
                 ? util::format("\"other\":%llu", static_cast<unsigned long long>(
                                                      day.rcodes[slot]))
                 : util::format("\"%zu\":%llu", slot,
                                static_cast<unsigned long long>(
                                    day.rcodes[slot]));
    }
    out += "}";
    out += util::format(",\"dns-responses-truncated\":%llu",
                        static_cast<unsigned long long>(day.truncated));
    out += util::format(",\"axfr-served\":%llu",
                        static_cast<unsigned long long>(day.axfr_served));
    out += ",\"query-size\":" + day.query_size.to_json();
    out += ",\"udp-response-size\":" + day.udp_response_size.to_json();
    out += ",\"tcp-response-size\":" + day.tcp_response_size.to_json();
    out += util::format(",\"num-sources-ipv4\":%llu,\"num-sources-ipv6\":%llu",
                        static_cast<unsigned long long>(day.sources[0].estimate()),
                        static_cast<unsigned long long>(day.sources[1].estimate()));
    out += "}\n";
  }
  return out;
}

bool Rssac002Collector::write_jsonl(const std::string& path,
                                    const std::string& scenario) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (!file) return false;
  const std::string body = to_jsonl(scenario);
  const bool ok = std::fwrite(body.data(), 1, body.size(), file) == body.size();
  return std::fclose(file) == 0 && ok;
}

}  // namespace rootsim::obs
