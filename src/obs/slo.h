// Streaming RSSAC047 SLO plane: sliding-window service-level metrics.
//
// The paper frames the root server system through RSSAC037's governance
// goals; RSSAC047 operationalizes them as measurable service metrics with
// thresholds (99.96 % service availability, response-latency bands,
// publication latency). A real root operator does not compute those *post
// hoc* after a campaign — thresholds are watched continuously and breaches
// page someone. This module is that watcher for the simulation: samples
// stream in as the campaign runs, land in fixed-width buckets of simulated
// time, and a deterministic sweep evaluates sliding windows against the
// thresholds (incident detection lives in obs/incident.h).
//
// Determinism contract (the same one Rssac002Collector keeps): a cell is a
// pile of merge-associative, merge-commutative accumulators — plain adds and
// fixed-layout log-linear histograms — keyed by (root, family, bucket) where
// the bucket boundary is a pure function of simulated time. Per-unit shards
// folded in any order therefore reproduce a serial run's cells bit for bit,
// and the window sweep + threshold evaluation is a pure function of the
// cells, so slo.jsonl is byte-identical at any worker count and under any
// steal schedule. "Streaming" means evaluation needs one ordered pass over
// the bucket timeline, never the raw samples — the batch RSSAC047 analysis
// is re-expressed as a replay over this collector (analysis/rssac_metrics.h)
// so the two paths cannot drift.
//
// This header is deliberately free of dns/netsim/rss types: the measurement
// layer translates probe outcomes into plain-integer SloSamples, so obs
// stays the bottom of the dependency stack.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "obs/loglin.h"
#include "util/timeutil.h"

namespace rootsim::obs {

/// The 13 root letters; mirrors rss::kRootCount without the dependency.
inline constexpr size_t kSloRoots = 13;

/// One service-level observation, reduced to plain integers/doubles by the
/// measurement layer.
struct SloSample {
  enum class Kind : uint8_t {
    Availability,  ///< one probe: ok = the selected instance answered
    Latency,       ///< one answered probe's RTT: value = milliseconds
    Publication,   ///< one instance picked up a new serial: value = seconds
    Staleness,     ///< one probe's serial age behind the master: value = s
    Integrity,     ///< one zone-integrity check: ok = ZONEMD verifiable
  };
  uint8_t root = 0;         ///< root letter index (0 = a .. 12 = m)
  bool v6 = false;          ///< address family of the probed service address
  util::UnixTime when = 0;  ///< simulated time; bucketed by kSloBucketSeconds
  Kind kind = Kind::Availability;
  bool ok = true;           ///< Availability / Integrity verdict
  double value = 0;         ///< Latency ms; Publication / Staleness seconds
};

/// RSSAC047-style thresholds plus the window/hysteresis policy evaluated
/// against them. Defaults are the RSSAC047 targets where one exists and a
/// conservative operator band where it does not.
struct SloThresholds {
  /// RSSAC047: 99.96 % availability for the service.
  double availability_min = 0.9996;
  /// Per-letter p95 response-latency band (ms). RSSAC047's latency target is
  /// per-protocol (250 ms UDP); deployments differ enough that a per-letter
  /// override array is provided (0 = use the default band).
  double rtt_p95_max_ms = 250.0;
  std::array<double, kSloRoots> rtt_p95_letter_ms{};
  /// RSSAC047 publication latency: new zones reach instances within 35 min.
  double publication_p95_max_s = 35.0 * 60;
  /// A served zone more than this far behind the master is stale.
  double staleness_max_s = 4.0 * 3600;
  /// Fraction of integrity checks (ZONEMD verifiable) that must pass.
  double integrity_min = 0.999;
  /// Sliding window length in buckets (window = last N buckets, inclusive).
  size_t window_buckets = 4;
  /// Windows with fewer availability probes than this are not evaluated
  /// (starved windows say nothing about the service).
  uint64_t min_probes = 16;
  /// Hysteresis: a breach must persist for `open_after` consecutive
  /// evaluated windows to open an incident, and the stream must stay healthy
  /// for `close_after` consecutive evaluated windows to close it — so a
  /// metric oscillating exactly at the threshold boundary never flaps.
  ///
  /// open_after defaults to window_buckets + 2 deliberately: one bad bucket
  /// smears across window_buckets consecutive sliding windows (every window
  /// containing it breaches), so any open_after <= window_buckets would page
  /// on a single blip. Demanding more consecutive breached windows than one
  /// bucket can produce means only multi-bucket events open incidents.
  size_t open_after = 6;
  size_t close_after = 4;
};

/// The metrics a window is evaluated on (bit positions in SloWindow::breaches).
enum class SloMetric : uint8_t {
  Availability = 0,
  Latency = 1,
  Publication = 2,
  Staleness = 3,
  Integrity = 4,
};
inline constexpr size_t kSloMetricCount = 5;

std::string_view to_string(SloMetric metric);

/// One evaluated sliding window of one (root, family) stream.
struct SloWindow {
  uint8_t root = 0;
  bool v6 = false;
  util::UnixTime start = 0;  ///< inclusive window start (simulated time)
  util::UnixTime end = 0;    ///< exclusive window end
  uint64_t probes = 0;
  uint64_t answered = 0;
  double availability = 1.0;
  uint64_t latency_count = 0;
  double rtt_p50_ms = 0;
  double rtt_p95_ms = 0;
  uint64_t publication_count = 0;
  double publication_p95_s = 0;
  uint64_t staleness_count = 0;
  double staleness_max_s = 0;
  uint64_t integrity_checks = 0;
  uint64_t integrity_ok = 0;
  /// Bitmask of breached SloMetrics; 0 = healthy.
  uint32_t breaches = 0;
  /// Enough probes to evaluate (SloThresholds::min_probes)?
  bool evaluated = false;

  bool breached(SloMetric metric) const {
    return breaches & (1u << static_cast<unsigned>(metric));
  }
};

/// Accumulates SloSamples into per-(root, family, bucket) cells and sweeps
/// them into evaluated sliding windows. Thread-safe; the exec engine gives
/// each unit its own collector shard and folds them with merge_from in unit
/// order (obs::Recorder owns one, exec::ObsShards wires the shards).
class SloCollector {
 public:
  /// Bucket width of simulated time. Fixed (not configured) so any two
  /// collectors are always merge-compatible — the sliding-window length and
  /// the thresholds are evaluation-time policy, not accumulation state.
  static constexpr int64_t kBucketSeconds = 6 * 3600;

  /// Bucket index containing `t` (floor division, total over UnixTime).
  static int64_t bucket_index(util::UnixTime t);
  static util::UnixTime bucket_start(int64_t index);

  /// Everything one (root, family) stream accumulated over one bucket.
  struct Cell {
    uint64_t probes = 0;
    uint64_t answered = 0;
    LogLinearHistogram rtt_us;          ///< answered-probe RTTs, microseconds
    LogLinearHistogram publication_s;   ///< per-instance publication latencies
    LogLinearHistogram staleness_s;     ///< served-serial age behind master
    uint64_t integrity_checks = 0;
    uint64_t integrity_ok = 0;

    void merge_from(const Cell& other);
  };

  void record(const SloSample& sample);
  void merge_from(const SloCollector& other);
  void clear();

  bool empty() const;
  /// Distinct (root, family, bucket) cells accumulated.
  size_t cell_count() const;

  /// Key = (root, family 0/1, bucket index); deterministic map order.
  using CellKey = std::tuple<uint8_t, uint8_t, int64_t>;
  std::vector<std::pair<CellKey, Cell>> snapshot() const;

  /// Cumulative end-of-campaign window of one stream: every bucket of
  /// (root, family) merged into a single cell. The batch RSSAC047 analysis
  /// reads its report out of exactly this (replay equivalence).
  Cell totals(uint8_t root, bool v6) const;

  /// The deterministic sliding-window sweep: for every (root, family)
  /// stream, one SloWindow per bucket in the stream's [first, last] bucket
  /// range (empty buckets included — a silent stream still advances the
  /// window), each aggregating the trailing `thresholds.window_buckets`
  /// buckets and evaluated against the thresholds. Ordered by (root, family,
  /// bucket), i.e. grouped per stream in time order — the order
  /// IncidentTracker::observe expects.
  std::vector<SloWindow> windows(const SloThresholds& thresholds) const;

  /// One JSON object per evaluated window (the slo.jsonl export):
  ///   {"letter":"b","family":"v4","start":"2023-11-27T00:00:00Z",...,
  ///    "availability":0.9931,"breaches":["availability"]}
  /// Non-empty `scenario` prepends one `{"scenario":"<name>"}` header line
  /// so downstream tooling can say which timeline a dataset came from; the
  /// window lines themselves are unchanged.
  static std::string windows_to_jsonl(const std::vector<SloWindow>& windows,
                                      const std::string& scenario = "");
  std::string to_jsonl(const SloThresholds& thresholds) const;
  bool write_jsonl(const std::string& path,
                   const SloThresholds& thresholds) const;

 private:
  mutable std::mutex mu_;
  std::map<CellKey, Cell> cells_;
};

}  // namespace rootsim::obs
