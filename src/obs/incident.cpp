#include "obs/incident.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"  // json_escape
#include "util/strings.h"

namespace rootsim::obs {

IncidentTracker::IncidentTracker(SloThresholds thresholds)
    : thresholds_(thresholds),
      states_(kSloRoots * 2 * kSloMetricCount) {}

size_t IncidentTracker::state_index(uint8_t root, bool v6, SloMetric metric) {
  return (static_cast<size_t>(root) * 2 + (v6 ? 1 : 0)) * kSloMetricCount +
         static_cast<size_t>(metric);
}

double IncidentTracker::metric_value(const SloWindow& window,
                                     SloMetric metric) const {
  switch (metric) {
    case SloMetric::Availability: return window.availability;
    case SloMetric::Latency: return window.rtt_p95_ms;
    case SloMetric::Publication: return window.publication_p95_s;
    case SloMetric::Staleness: return window.staleness_max_s;
    case SloMetric::Integrity:
      return window.integrity_checks
                 ? static_cast<double>(window.integrity_ok) /
                       window.integrity_checks
                 : 1.0;
  }
  return 0;
}

double IncidentTracker::metric_threshold(uint8_t root,
                                         SloMetric metric) const {
  switch (metric) {
    case SloMetric::Availability: return thresholds_.availability_min;
    case SloMetric::Latency:
      return thresholds_.rtt_p95_letter_ms[root] > 0
                 ? thresholds_.rtt_p95_letter_ms[root]
                 : thresholds_.rtt_p95_max_ms;
    case SloMetric::Publication: return thresholds_.publication_p95_max_s;
    case SloMetric::Staleness: return thresholds_.staleness_max_s;
    case SloMetric::Integrity: return thresholds_.integrity_min;
  }
  return 0;
}

bool IncidentTracker::more_extreme(SloMetric metric, double candidate,
                                   double current) {
  // Availability and Integrity breach downward, the rest upward.
  if (metric == SloMetric::Availability || metric == SloMetric::Integrity)
    return candidate < current;
  return candidate > current;
}

void IncidentTracker::observe(const std::vector<SloWindow>& windows) {
  for (const SloWindow& window : windows) {
    if (!window.evaluated) continue;  // starvation is not evidence
    if (window.root >= kSloRoots) continue;
    for (size_t m = 0; m < kSloMetricCount; ++m) {
      const auto metric = static_cast<SloMetric>(m);
      StreamState& state =
          states_[state_index(window.root, window.v6, metric)];
      const double value = metric_value(window, metric);
      if (window.breached(metric)) {
        state.heal_streak = 0;
        if (state.breach_streak == 0) {
          state.streak_start = window.start;
          state.streak_worst = value;
          state.streak_windows = 0;
        }
        ++state.breach_streak;
        ++state.streak_windows;
        state.streak_last_end = window.end;
        if (more_extreme(metric, value, state.streak_worst))
          state.streak_worst = value;
        if (state.open_index < 0 &&
            state.breach_streak >= thresholds_.open_after) {
          Incident incident;
          incident.root = window.root;
          incident.v6 = window.v6;
          incident.metric = metric;
          incident.opened = state.streak_start;
          incident.last_breach_end = state.streak_last_end;
          incident.breach_windows = state.streak_windows;
          incident.worst_value = state.streak_worst;
          incident.threshold = metric_threshold(window.root, metric);
          state.open_index = static_cast<int>(incidents_.size());
          incidents_.push_back(std::move(incident));
        } else if (state.open_index >= 0) {
          Incident& incident = incidents_[static_cast<size_t>(state.open_index)];
          ++incident.breach_windows;
          incident.last_breach_end = window.end;
          if (more_extreme(metric, value, incident.worst_value))
            incident.worst_value = value;
        }
      } else {
        state.breach_streak = 0;
        state.streak_windows = 0;
        if (state.open_index >= 0) {
          ++state.heal_streak;
          if (state.heal_streak >= thresholds_.close_after) {
            incidents_[static_cast<size_t>(state.open_index)].closed =
                window.end;
            state.open_index = -1;
            state.heal_streak = 0;
          }
        } else {
          state.heal_streak = 0;
        }
      }
    }
  }
}

void IncidentTracker::add_hint(const CauseHint& hint) {
  hints_.push_back(hint);
}

void IncidentTracker::add_hints(const std::vector<CauseHint>& hints) {
  hints_.insert(hints_.end(), hints.begin(), hints.end());
}

void IncidentTracker::reset() {
  states_.assign(states_.size(), StreamState{});
  incidents_.clear();
  hints_.clear();
}

size_t IncidentTracker::open_count() const {
  size_t n = 0;
  for (const Incident& incident : incidents_)
    if (incident.open()) ++n;
  return n;
}

void IncidentTracker::attribute(Incident& incident) const {
  // Score every matching hint by overlap with [opened, activity end] and
  // keep the best; ties break toward the lexicographically smaller label so
  // the winner never depends on hint insertion order.
  const util::UnixTime incident_end =
      incident.open() ? incident.last_breach_end : incident.closed;
  incident.cause = "unknown";
  incident.cause_score = 0;
  for (const CauseHint& hint : hints_) {
    if (hint.root >= 0 && hint.root != incident.root) continue;
    if (hint.family >= 0 && hint.family != (incident.v6 ? 1 : 0)) continue;
    if (hint.metric >= 0 &&
        hint.metric != static_cast<int>(incident.metric))
      continue;
    const util::UnixTime lo = std::max(incident.opened, hint.start);
    const util::UnixTime hi = std::min(incident_end, hint.end);
    if (hi <= lo) continue;
    const double score = static_cast<double>(hi - lo) * hint.weight;
    if (score > incident.cause_score ||
        (score == incident.cause_score && incident.cause != "unknown" &&
         hint.label < incident.cause)) {
      incident.cause = hint.label;
      incident.cause_score = score;
    }
  }
}

std::vector<Incident> IncidentTracker::incidents() const {
  std::vector<Incident> out = incidents_;
  std::sort(out.begin(), out.end(), [](const Incident& a, const Incident& b) {
    return std::tie(a.opened, a.root, a.v6, a.metric) <
           std::tie(b.opened, b.root, b.v6, b.metric);
  });
  uint32_t next_id = 1;
  for (Incident& incident : out) {
    incident.id = next_id++;
    attribute(incident);
  }
  return out;
}

std::string IncidentTracker::incidents_to_jsonl(
    const std::vector<Incident>& incidents, const std::string& scenario) {
  std::string out;
  if (!scenario.empty()) out += "{\"scenario\":\"" + scenario + "\"}\n";
  for (const Incident& incident : incidents) {
    out += util::format("{\"id\":%u,\"letter\":\"%c\",\"family\":\"%s\"",
                        incident.id, 'a' + incident.root,
                        incident.v6 ? "v6" : "v4");
    out += ",\"metric\":\"";
    out += to_string(incident.metric);
    out += "\",\"opened\":\"" + util::format_datetime(incident.opened) + "\"";
    if (incident.open()) {
      out += ",\"closed\":null";
    } else {
      out += ",\"closed\":\"" + util::format_datetime(incident.closed) + "\"";
    }
    out += util::format(
        ",\"breach_windows\":%zu,\"worst\":%.6f,\"threshold\":%.6f",
        incident.breach_windows, incident.worst_value, incident.threshold);
    out += ",\"cause\":\"" + json_escape(incident.cause) + "\"";
    out += util::format(",\"cause_score\":%.0f}\n", incident.cause_score);
  }
  return out;
}

std::string IncidentTracker::to_jsonl() const {
  return incidents_to_jsonl(incidents());
}

bool IncidentTracker::write_jsonl(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (!file) return false;
  const std::string body = to_jsonl();
  const bool ok = std::fwrite(body.data(), 1, body.size(), file) == body.size();
  return std::fclose(file) == 0 && ok;
}

}  // namespace rootsim::obs
