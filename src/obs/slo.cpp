#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/metrics.h"  // json_escape
#include "util/strings.h"

namespace rootsim::obs {

std::string_view to_string(SloMetric metric) {
  switch (metric) {
    case SloMetric::Availability: return "availability";
    case SloMetric::Latency: return "latency";
    case SloMetric::Publication: return "publication";
    case SloMetric::Staleness: return "staleness";
    case SloMetric::Integrity: return "integrity";
  }
  return "?";
}

int64_t SloCollector::bucket_index(util::UnixTime t) {
  // Floor division: simulated times are positive in practice, but keep the
  // mapping total so a fuzzer-supplied sample cannot split a bucket boundary.
  int64_t q = t / kBucketSeconds;
  if (t % kBucketSeconds < 0) --q;
  return q;
}

util::UnixTime SloCollector::bucket_start(int64_t index) {
  return index * kBucketSeconds;
}

void SloCollector::Cell::merge_from(const Cell& other) {
  probes += other.probes;
  answered += other.answered;
  rtt_us.merge_from(other.rtt_us);
  publication_s.merge_from(other.publication_s);
  staleness_s.merge_from(other.staleness_s);
  integrity_checks += other.integrity_checks;
  integrity_ok += other.integrity_ok;
}

void SloCollector::record(const SloSample& sample) {
  if (sample.root >= kSloRoots) return;
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell = cells_[{sample.root, static_cast<uint8_t>(sample.v6 ? 1 : 0),
                       bucket_index(sample.when)}];
  switch (sample.kind) {
    case SloSample::Kind::Availability:
      ++cell.probes;
      if (sample.ok) ++cell.answered;
      break;
    case SloSample::Kind::Latency:
      // Microsecond resolution keeps the log-linear relative error (~3 %)
      // meaningful for single-digit-millisecond RTTs.
      cell.rtt_us.observe(static_cast<uint64_t>(
          std::llround(std::max(0.0, sample.value) * 1000.0)));
      break;
    case SloSample::Kind::Publication:
      cell.publication_s.observe(static_cast<uint64_t>(
          std::llround(std::max(0.0, sample.value))));
      break;
    case SloSample::Kind::Staleness:
      cell.staleness_s.observe(static_cast<uint64_t>(
          std::llround(std::max(0.0, sample.value))));
      break;
    case SloSample::Kind::Integrity:
      ++cell.integrity_checks;
      if (sample.ok) ++cell.integrity_ok;
      break;
  }
}

void SloCollector::merge_from(const SloCollector& other) {
  // Snapshot the source under its own lock, fold under ours; the locks are
  // never held together (same discipline as Rssac002Collector::merge_from).
  auto cells = other.snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, cell] : cells) cells_[key].merge_from(cell);
}

void SloCollector::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cells_.clear();
}

bool SloCollector::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_.empty();
}

size_t SloCollector::cell_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_.size();
}

std::vector<std::pair<SloCollector::CellKey, SloCollector::Cell>>
SloCollector::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {cells_.begin(), cells_.end()};
}

SloCollector::Cell SloCollector::totals(uint8_t root, bool v6) const {
  Cell total;
  std::lock_guard<std::mutex> lock(mu_);
  const uint8_t family = v6 ? 1 : 0;
  auto it = cells_.lower_bound({root, family,
                                std::numeric_limits<int64_t>::min()});
  for (; it != cells_.end(); ++it) {
    const auto& [r, f, bucket] = it->first;
    if (r != root || f != family) break;
    total.merge_from(it->second);
  }
  return total;
}

std::vector<SloWindow> SloCollector::windows(
    const SloThresholds& thresholds) const {
  const auto cells = snapshot();
  std::vector<SloWindow> out;
  const size_t window = std::max<size_t>(1, thresholds.window_buckets);

  size_t i = 0;
  while (i < cells.size()) {
    // One contiguous run of the snapshot is one (root, family) stream.
    const auto [root, family, first_bucket] = cells[i].first;
    size_t j = i;
    while (j < cells.size() && std::get<0>(cells[j].first) == root &&
           std::get<1>(cells[j].first) == family)
      ++j;
    const int64_t last_bucket = std::get<2>(cells[j - 1].first);

    const double band =
        thresholds.rtt_p95_letter_ms[root] > 0
            ? thresholds.rtt_p95_letter_ms[root]
            : thresholds.rtt_p95_max_ms;

    size_t cursor = i;  // next stream cell at or above the swept bucket
    for (int64_t bucket = first_bucket; bucket <= last_bucket; ++bucket) {
      // Aggregate the trailing window. Cells are sparse; scan back over the
      // stream's cells inside [bucket - window + 1, bucket].
      Cell agg;
      size_t back = cursor;
      if (back < j && std::get<2>(cells[back].first) == bucket) ++cursor;
      while (back < j && std::get<2>(cells[back].first) <= bucket) ++back;
      for (size_t k = i; k < back; ++k) {
        const int64_t b = std::get<2>(cells[k].first);
        if (b > bucket - static_cast<int64_t>(window) && b <= bucket)
          agg.merge_from(cells[k].second);
      }

      SloWindow w;
      w.root = root;
      w.v6 = family != 0;
      w.start = bucket_start(bucket - static_cast<int64_t>(window) + 1);
      w.end = bucket_start(bucket + 1);
      w.probes = agg.probes;
      w.answered = agg.answered;
      w.availability =
          agg.probes ? static_cast<double>(agg.answered) / agg.probes : 1.0;
      w.latency_count = agg.rtt_us.count();
      w.rtt_p50_ms = agg.rtt_us.quantile(0.5) / 1000.0;
      w.rtt_p95_ms = agg.rtt_us.quantile(0.95) / 1000.0;
      w.publication_count = agg.publication_s.count();
      w.publication_p95_s = agg.publication_s.quantile(0.95);
      w.staleness_count = agg.staleness_s.count();
      w.staleness_max_s = static_cast<double>(agg.staleness_s.max());
      w.integrity_checks = agg.integrity_checks;
      w.integrity_ok = agg.integrity_ok;
      w.evaluated = agg.probes >= thresholds.min_probes;
      if (w.evaluated) {
        if (w.availability < thresholds.availability_min)
          w.breaches |= 1u << static_cast<unsigned>(SloMetric::Availability);
        if (w.latency_count > 0 && w.rtt_p95_ms > band)
          w.breaches |= 1u << static_cast<unsigned>(SloMetric::Latency);
        if (w.publication_count > 0 &&
            w.publication_p95_s > thresholds.publication_p95_max_s)
          w.breaches |= 1u << static_cast<unsigned>(SloMetric::Publication);
        if (w.staleness_count > 0 &&
            w.staleness_max_s > thresholds.staleness_max_s)
          w.breaches |= 1u << static_cast<unsigned>(SloMetric::Staleness);
        if (w.integrity_checks > 0 &&
            static_cast<double>(w.integrity_ok) / w.integrity_checks <
                thresholds.integrity_min)
          w.breaches |= 1u << static_cast<unsigned>(SloMetric::Integrity);
      }
      out.push_back(w);
    }
    i = j;
  }
  return out;
}

std::string SloCollector::windows_to_jsonl(
    const std::vector<SloWindow>& windows, const std::string& scenario) {
  std::string out;
  if (!scenario.empty()) out += "{\"scenario\":\"" + scenario + "\"}\n";
  for (const SloWindow& w : windows) {
    out += util::format("{\"letter\":\"%c\",\"family\":\"%s\"",
                        'a' + w.root, w.v6 ? "v6" : "v4");
    out += ",\"start\":\"" + util::format_datetime(w.start) + "\"";
    out += ",\"end\":\"" + util::format_datetime(w.end) + "\"";
    out += util::format(
        ",\"probes\":%llu,\"answered\":%llu,\"availability\":%.6f",
        static_cast<unsigned long long>(w.probes),
        static_cast<unsigned long long>(w.answered), w.availability);
    out += util::format(
        ",\"rtt_p50_ms\":%.3f,\"rtt_p95_ms\":%.3f", w.rtt_p50_ms, w.rtt_p95_ms);
    out += util::format(
        ",\"publication_count\":%llu,\"publication_p95_s\":%.0f",
        static_cast<unsigned long long>(w.publication_count),
        w.publication_p95_s);
    out += util::format(
        ",\"staleness_count\":%llu,\"staleness_max_s\":%.0f",
        static_cast<unsigned long long>(w.staleness_count),
        w.staleness_max_s);
    out += util::format(
        ",\"integrity_checks\":%llu,\"integrity_ok\":%llu",
        static_cast<unsigned long long>(w.integrity_checks),
        static_cast<unsigned long long>(w.integrity_ok));
    out += util::format(",\"evaluated\":%s", w.evaluated ? "true" : "false");
    out += ",\"breaches\":[";
    bool first = true;
    for (size_t m = 0; m < kSloMetricCount; ++m) {
      if (!(w.breaches & (1u << m))) continue;
      if (!first) out += ",";
      first = false;
      out += "\"";
      out += to_string(static_cast<SloMetric>(m));
      out += "\"";
    }
    out += "]}\n";
  }
  return out;
}

std::string SloCollector::to_jsonl(const SloThresholds& thresholds) const {
  return windows_to_jsonl(windows(thresholds));
}

bool SloCollector::write_jsonl(const std::string& path,
                               const SloThresholds& thresholds) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (!file) return false;
  const std::string body = to_jsonl(thresholds);
  const bool ok = std::fwrite(body.data(), 1, body.size(), file) == body.size();
  return std::fclose(file) == 0 && ok;
}

}  // namespace rootsim::obs
