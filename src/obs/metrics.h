// Metrics substrate for the measurement pipeline: counters, gauges and
// fixed-bucket histograms behind one registry.
//
// Design constraints (see ISSUE 2 / ZDNS's per-query status output):
//   * hot-path increments are lock-free (relaxed atomics on pre-resolved
//     handles); the registry mutex is only taken at registration time,
//     so instrumented code caches `Counter*` handles once and increments
//     without synchronization cost afterwards;
//   * iteration order is deterministic (name-then-label lexicographic), so
//     exports from equal-seed runs are byte-identical;
//   * wall-clock style metrics are flagged `volatile_metric` and excluded
//     from exports by default — everything exported is a pure function of
//     (seed, config).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rootsim::obs {

/// Sorted key=value pairs attached to a metric ("family=v4"). Kept small;
/// the registry normalizes ordering so {a=1,b=2} and {b=2,a=1} are one series.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Renders "{k1=v1,k2=v2}" (empty string for no labels).
std::string labels_to_string(const LabelSet& labels);

/// Monotonic event count.
class Counter {
 public:
  void inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written value with a set-to-max convenience (zone serials).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void set_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void add(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Fixed upper-bound buckets (a final +inf bucket is implicit). Bounds are
/// immutable after registration — re-registering a histogram with different
/// bounds keeps the first set, as Prometheus clients do.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  /// Adds another histogram's buckets/count/sum into this one (parallel
  /// shard merge). Requires identical bounds; mismatched bounds are ignored
  /// rather than corrupting buckets.
  void merge_from(const Histogram& other);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative-free per-bucket counts; size() == bounds().size() + 1.
  std::vector<uint64_t> bucket_counts() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

  /// Interpolated quantile, q in [0,1] — see histogram_quantile().
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// Default latency buckets (milliseconds) used when a histogram is created
/// through the convenience path.
const std::vector<double>& default_latency_bounds_ms();

/// A point-in-time copy of one metric series, used by exports and RunReport.
struct MetricSample {
  enum class Kind { Counter, Gauge, Histogram };
  std::string name;
  LabelSet labels;
  Kind kind = Kind::Counter;
  bool volatile_metric = false;  ///< wall-clock etc.; excluded by default
  uint64_t count = 0;            ///< counter value / histogram observation count
  double value = 0;              ///< gauge value / histogram sum
  std::vector<double> bounds;    ///< histogram only
  std::vector<uint64_t> buckets; ///< histogram only, bounds.size() + 1 entries
};

class MetricsRegistry {
 public:
  /// Registration: returns a stable handle, creating the series on first
  /// use. Handles stay valid for the registry's lifetime; increments on them
  /// never take the registry lock.
  Counter& counter(std::string_view name, LabelSet labels = {});
  Gauge& gauge(std::string_view name, LabelSet labels = {},
               bool volatile_metric = false);
  Histogram& histogram(std::string_view name, LabelSet labels = {},
                       std::vector<double> bounds = {});

  /// Deterministically ordered copy of every series.
  std::vector<MetricSample> snapshot(bool include_volatile = false) const;

  /// Folds another registry into this one: counters and histograms add,
  /// gauges take the max (every gauge in the pipeline is monotone — serials,
  /// set sizes). Used by the exec engine to merge per-worker shards; merging
  /// shards in any order yields the same totals, and the totals equal a
  /// serial run's.
  void merge_from(const MetricsRegistry& other);

  /// Plain-text export, one series per line:
  ///   prober.queries{rcode=NOERROR} 12345
  ///   prober.rtt_ms{family=v4} count=120 sum=4321.000 le10=17 le20=40 ...
  std::string to_text(bool include_volatile = false) const;

  /// JSON-lines export, one object per series (stable key order).
  std::string to_jsonl(bool include_volatile = false) const;

  /// Total value of a counter across all label sets (0 when absent).
  uint64_t counter_total(std::string_view name) const;
  /// Value of one exact counter series (0 when absent).
  uint64_t counter_value(std::string_view name, const LabelSet& labels) const;

 private:
  struct Key {
    std::string name;
    LabelSet labels;
    bool operator<(const Key& other) const {
      if (name != other.name) return name < other.name;
      return labels < other.labels;
    }
  };
  struct Entry {
    MetricSample::Kind kind = MetricSample::Kind::Counter;
    bool volatile_metric = false;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<Key, Entry> series_;
};

/// Interpolated quantile of a fixed-bucket histogram, q in [0,1]. Bucket i
/// spans (bounds[i-1], bounds[i]] (0 as the floor of the first bucket — every
/// histogram in the pipeline observes non-negative values); the value at rank
/// q*(count-1) is placed *linearly inside* its bucket's range rather than
/// snapped to the bucket upper bound, so p50 of a uniform sample lands near
/// the middle of a bucket instead of at its edge. The +inf overflow bucket
/// cannot be interpolated and reports the highest finite bound. Because
/// merge_from() adds buckets element-wise, merge(a,b) quantiles are exactly
/// the single-pass quantiles. Returns 0 on an empty histogram.
double histogram_quantile(const std::vector<double>& bounds,
                          const std::vector<uint64_t>& buckets, double q);

/// Quantile of a snapshotted histogram sample (0 for counters/gauges).
double sample_quantile(const MetricSample& sample, double q);

/// Renders a MetricSample as one JSONL object (shared by registry export and
/// RunReport).
std::string sample_to_json(const MetricSample& sample);
/// Renders a MetricSample as one text line.
std::string sample_to_text(const MetricSample& sample);

/// Minimal JSON string escaping for exporter output.
std::string json_escape(std::string_view text);

}  // namespace rootsim::obs
