// RSSAC002-style per-instance daily telemetry.
//
// Real root operators publish RSSAC002 daily measurements per instance:
// query/response volume split by transport and address family, response-code
// mix, truncation rate, size distributions and unique-source counts. The
// simulated root instances emit the same artifact so a scenario run (the
// b.root renumbering, the ZONEMD roll, an outage scenario) is analyzable
// with operator-grade evidence instead of ad-hoc counters.
//
// Determinism contract (the same one MetricsRegistry::merge_from keeps):
// every accumulator is merge-associative and commutative — plain adds,
// fixed-layout log-linear histograms, and an OR-merged bitmap sketch for
// unique sources — so per-worker shards folded in any order reproduce a
// serial run's export byte for byte.
//
// This header is deliberately free of dns/netsim types: the transport layer
// translates its exchange outcome into the plain-integer Rssac002Sample, so
// obs stays the bottom of the dependency stack.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/loglin.h"
#include "util/timeutil.h"

namespace rootsim::obs {

/// Linear-counting sketch of distinct 64-bit source identities: a fixed
/// 4096-bit bitmap, OR-merged across shards. Estimation error is ~2% up to
/// a few thousand distinct sources — plenty for per-instance-per-day VP
/// counts — and the bitmap itself (not the estimate) is what shards merge,
/// so the merged estimate equals the single-pass estimate exactly.
class UniqueSourceSketch {
 public:
  static constexpr size_t kBits = 4096;

  void insert(uint64_t source_id);
  void merge_from(const UniqueSourceSketch& other);

  /// Linear-counting estimate of the number of distinct inserted ids,
  /// rounded to the nearest integer. kBits * ln(kBits) when saturated.
  uint64_t estimate() const;
  /// Bits set (the merged quantity; exported for exactness-minded tooling).
  uint64_t bits_set() const;

 private:
  uint64_t words_[kBits / 64] = {};
};

/// One server-side exchange, reduced to plain integers by the transport
/// layer. `udp_queries`/`tcp_queries` count queries the server actually
/// received (a datagram lost on the query path never reaches it); rcode and
/// sizes describe the final response when `delivered`.
struct Rssac002Sample {
  std::string_view instance;  ///< serving instance identity (hostname.bind)
  util::UnixTime when = 0;    ///< simulated time; bucketed to the UTC day
  bool v6 = false;            ///< address family of the queried service address
  uint32_t udp_queries = 0;   ///< UDP datagram queries received
  uint32_t tcp_queries = 0;   ///< TCP queries received (0 or 1)
  bool delivered = false;     ///< a final response reached the client
  bool final_tcp = false;     ///< that response went over TCP
  uint16_t rcode = 0;         ///< response code of the final response
  bool truncated = false;     ///< a TC=1 response was sent during the exchange
  bool axfr = false;          ///< the exchange was a zone transfer
  uint64_t query_bytes = 0;   ///< wire size of the query message
  uint64_t response_bytes = 0;  ///< wire size of the final response / stream
  uint64_t source_id = 0;       ///< client identity (vp id) for unique-sources
};

/// Accumulates Rssac002Samples into per-(instance, day) records and exports
/// them as rssac002.jsonl. Thread-safe; the exec engine gives each worker
/// its own collector and folds them with merge_from in shard order.
class Rssac002Collector {
 public:
  /// Everything one instance accumulated over one simulated day.
  struct Day {
    /// Queries received / responses sent, [udp=0|tcp=1][v4=0|v6=1].
    uint64_t queries[2][2] = {};
    uint64_t responses[2][2] = {};
    /// Final-response rcode mix; rcodes >= kRcodeSlots fold into the last
    /// slot (RSSAC002 reports the same small set).
    static constexpr size_t kRcodeSlots = 24;
    uint64_t rcodes[kRcodeSlots + 1] = {};
    uint64_t truncated = 0;    ///< responses sent with TC=1
    uint64_t axfr_served = 0;  ///< zone transfers streamed
    LogLinearHistogram query_size;
    LogLinearHistogram udp_response_size;
    LogLinearHistogram tcp_response_size;
    UniqueSourceSketch sources[2];  ///< distinct clients, [v4=0|v6=1]

    void merge_from(const Day& other);
    uint64_t total_queries() const;
    uint64_t total_responses() const;
  };

  void record(const Rssac002Sample& sample);
  void merge_from(const Rssac002Collector& other);
  void clear();

  bool empty() const;
  /// Distinct (instance, day) records accumulated.
  size_t record_count() const;

  /// Deterministically ordered copy (instance name, then day).
  std::vector<std::pair<std::pair<std::string, util::UnixTime>, Day>> snapshot()
      const;

  /// One JSON object per (instance, day), RSSAC002-flavoured field names:
  ///   {"instance":"k1-lon","day":"2023-12-10",
  ///    "dns-udp-queries-received-ipv4":..., "rcode-volume":{"0":...},
  ///    "query-size":{...log-linear histogram...}, "num-sources-ipv4":...}
  /// Non-empty `scenario` prepends one `{"scenario":"<name>"}` header line
  /// (same convention as the slo/incidents exports).
  std::string to_jsonl(const std::string& scenario = "") const;

  /// Writes to_jsonl() to `path`; false on I/O failure.
  bool write_jsonl(const std::string& path,
                   const std::string& scenario = "") const;

 private:
  mutable std::mutex mu_;
  std::map<std::pair<std::string, util::UnixTime>, Day> days_;
};

}  // namespace rootsim::obs
