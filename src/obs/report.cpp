#include "obs/report.h"

#include <algorithm>

#include "util/strings.h"

namespace rootsim::obs {

RunReport RunReport::capture(const Obs& obs, bool include_volatile) {
  RunReport report;
  if (obs.metrics) report.metrics = obs.metrics->snapshot(include_volatile);
  if (obs.tracer) {
    report.trace_recorded = obs.tracer->recorded();
    report.trace_buffered = obs.tracer->size();
    report.trace_dropped = obs.tracer->dropped();
  }
  return report;
}

RunReport RunReport::capture(const Recorder& recorder, bool include_volatile) {
  RunReport report;
  report.metrics = recorder.metrics().snapshot(include_volatile);
  report.trace_recorded = recorder.tracer().recorded();
  report.trace_buffered = recorder.tracer().size();
  report.trace_dropped = recorder.tracer().dropped();
  return report;
}

uint64_t RunReport::counter_total(std::string_view name) const {
  uint64_t total = 0;
  for (const MetricSample& sample : metrics)
    if (sample.kind == MetricSample::Kind::Counter && sample.name == name)
      total += sample.count;
  return total;
}

uint64_t RunReport::counter_value(std::string_view name,
                                  const LabelSet& labels) const {
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (const MetricSample& sample : metrics)
    if (sample.kind == MetricSample::Kind::Counter && sample.name == name &&
        sample.labels == sorted)
      return sample.count;
  return 0;
}

std::string RunReport::to_text() const {
  std::string out;
  for (const MetricSample& sample : metrics) {
    out += sample_to_text(sample);
    out += "\n";
  }
  out += util::format("trace: recorded=%llu buffered=%llu dropped=%llu\n",
                      static_cast<unsigned long long>(trace_recorded),
                      static_cast<unsigned long long>(trace_buffered),
                      static_cast<unsigned long long>(trace_dropped));
  return out;
}

std::string RunReport::one_line() const {
  bool any = false;
  std::string out = "obs:";
  auto emit = [&](const char* label, std::string_view metric) {
    bool present = std::any_of(
        metrics.begin(), metrics.end(),
        [&](const MetricSample& sample) { return sample.name == metric; });
    if (!present) return;
    any = true;
    out += util::format(" %s=%llu", label,
                        static_cast<unsigned long long>(counter_total(metric)));
  };
  emit("probes", "prober.probes");
  emit("queries", "prober.queries");
  emit("timeouts", "prober.query_timeouts");
  emit("tcp-retries", "prober.tcp_retries");
  emit("axfr", "prober.axfr");
  emit("served", "rss.queries_served");
  emit("truncations", "rss.truncations");
  emit("zones-built", "rss.zones_built");
  emit("routes", "netsim.route_selections");
  emit("site-flips", "netsim.site_flips");
  emit("churn", "netsim.churn_events");
  emit("validations", "dnssec.validations");
  if (trace_recorded) {
    any = true;
    out += util::format(" trace-events=%llu",
                        static_cast<unsigned long long>(trace_recorded));
    if (trace_dropped)
      out += util::format(" trace-dropped=%llu",
                          static_cast<unsigned long long>(trace_dropped));
  }
  if (!any) out += " (no samples recorded)";
  return out;
}

}  // namespace rootsim::obs
