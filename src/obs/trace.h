// Per-probe tracing: spans with nested child events over a bounded ring.
//
// One span covers one (vp, address, round) probe; child events record the
// traceroute, each DNS query, the AXFR and the validation verdict — the
// structured per-query status output ZDNS demonstrated a measurement
// toolkit needs at scale. Timestamps are *simulated* campaign time, never
// the wall clock, so two equal-seed runs dump byte-identical JSONL.
//
// The buffer is a bounded ring: when full, the oldest events are dropped
// (and counted), so long campaigns keep the most recent window without
// unbounded memory growth.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/timeutil.h"

namespace rootsim::obs {

class Counter;

/// One key=value annotation on a span or event. Values are pre-rendered
/// strings: formatting at record time keeps the dump deterministic and the
/// storage simple.
struct TraceAttr {
  std::string key;
  std::string value;
};

struct TraceEvent {
  enum class Kind { SpanBegin, SpanEnd, Event };
  uint64_t id = 0;       ///< monotonically increasing sequence number
  uint64_t span_id = 0;  ///< enclosing span's SpanBegin id; 0 = top level
  Kind kind = Kind::Event;
  std::string name;
  util::UnixTime sim_time = 0;  ///< simulated campaign time
  std::vector<TraceAttr> attrs;
};

class Tracer {
 public:
  explicit Tracer(size_t capacity = 1 << 16);

  /// Opens a span; returns its id for nesting and for end_span. `parent` is
  /// an enclosing span id (0 for top level).
  uint64_t begin_span(std::string_view name, util::UnixTime sim_time,
                      std::vector<TraceAttr> attrs = {}, uint64_t parent = 0);
  void end_span(uint64_t span_id, util::UnixTime sim_time,
                std::vector<TraceAttr> attrs = {});
  /// Records a point event inside `span_id` (0 = top level).
  void event(uint64_t span_id, std::string_view name, util::UnixTime sim_time,
             std::vector<TraceAttr> attrs = {});

  size_t capacity() const { return capacity_; }
  /// Events currently buffered (<= capacity).
  size_t size() const;
  /// Total events ever recorded, including dropped ones.
  uint64_t recorded() const;
  /// Events evicted by the ring bound.
  uint64_t dropped() const;

  /// In-order copy of the buffered events.
  std::vector<TraceEvent> events() const;

  /// One JSON object per buffered event, oldest first:
  ///   {"id":1,"span":0,"kind":"begin","name":"probe","t":1694593200,
  ///    "attrs":{"vp":"12","root":"k"}}
  std::string to_jsonl() const;

  void clear();

  /// Appends another tracer's buffered events, renumbering their ids to
  /// continue this tracer's sequence (span links are preserved). Used by the
  /// exec engine to merge per-worker shards in unit order: when each shard's
  /// capacity matches this tracer's, the merged ring — ids, content and drop
  /// count — is byte-identical to a serial run's. The shard is left empty.
  void absorb(Tracer&& shard);

  /// Mirrors ring evictions into a metrics counter (tracer.dropped_spans) so
  /// overflow is visible in exports instead of silent. Only push()-time
  /// evictions increment the counter — absorb() folds the shard's *counter*
  /// through the metrics merge, so double-counting shard drops here would
  /// break serial-vs-sharded equality.
  void bind_drop_counter(Counter* counter) { drop_counter_ = counter; }

 private:
  void push(TraceEvent event);

  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t next_id_ = 1;
  uint64_t dropped_ = 0;
  Counter* drop_counter_ = nullptr;
  std::deque<TraceEvent> ring_;
};

/// Parses one line produced by Tracer::to_jsonl back into a TraceEvent —
/// the round-trip half used by tests and by offline report tooling. Returns
/// false on malformed input.
bool parse_trace_line(std::string_view line, TraceEvent& out);

}  // namespace rootsim::obs
