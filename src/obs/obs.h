// The sink handle the runtime layers carry: two nullable pointers.
//
// A default-constructed Obs is the null sink — every helper is a no-op and
// instrumented code stays on its uninstrumented path (one branch on a null
// pointer), which is how tier-1 tests and the figure benches keep their
// byte-identical outputs. Attach a Recorder to turn recording on.
#pragma once

#include "obs/metrics.h"
#include "obs/rssac002.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace rootsim::obs {

struct Obs {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  Rssac002Collector* rssac002 = nullptr;
  SloCollector* slo = nullptr;

  bool enabled() const {
    return metrics != nullptr || tracer != nullptr || rssac002 != nullptr ||
           slo != nullptr;
  }

  /// Null-safe counter increment. Prefer caching the Counter* handle (via
  /// `counter_handle`) on hot paths; this convenience does a registry lookup.
  void count(std::string_view name, uint64_t n = 1) const {
    if (metrics) metrics->counter(name).inc(n);
  }
  void count(std::string_view name, LabelSet labels, uint64_t n = 1) const {
    if (metrics) metrics->counter(name, std::move(labels)).inc(n);
  }

  /// Null-safe histogram observation (default latency buckets).
  void observe(std::string_view name, LabelSet labels, double value) const {
    if (metrics) metrics->histogram(name, std::move(labels)).observe(value);
  }

  /// Resolves a counter handle once; returns nullptr on the null sink.
  Counter* counter_handle(std::string_view name, LabelSet labels = {}) const {
    return metrics ? &metrics->counter(name, std::move(labels)) : nullptr;
  }
  Histogram* histogram_handle(std::string_view name, LabelSet labels = {},
                              std::vector<double> bounds = {}) const {
    return metrics ? &metrics->histogram(name, std::move(labels),
                                         std::move(bounds))
                   : nullptr;
  }
};

/// Increments a pre-resolved handle; no-op on nullptr.
inline void inc(Counter* counter, uint64_t n = 1) {
  if (counter) counter->inc(n);
}
inline void observe(Histogram* histogram, double value) {
  if (histogram) histogram->observe(value);
}

/// Owns one registry + one tracer and hands out Obs handles. The usual
/// pattern:
///
///   obs::Recorder recorder;
///   measure::Campaign campaign(config, recorder.obs());
///   ... run ...
///   obs::RunReport report = obs::RunReport::capture(recorder);
class Recorder {
 public:
  explicit Recorder(size_t trace_capacity = 1 << 16) : tracer_(trace_capacity) {
    // Registered eagerly so serial and sharded runs export the same series
    // set even when nothing overflows.
    tracer_.bind_drop_counter(&metrics_.counter("tracer.dropped_spans"));
  }

  Obs obs() { return Obs{&metrics_, &tracer_, &rssac002_, &slo_}; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  Rssac002Collector& rssac002() { return rssac002_; }
  const Rssac002Collector& rssac002() const { return rssac002_; }
  SloCollector& slo() { return slo_; }
  const SloCollector& slo() const { return slo_; }

 private:
  MetricsRegistry metrics_;
  Tracer tracer_;
  Rssac002Collector rssac002_;
  SloCollector slo_;
};

}  // namespace rootsim::obs
