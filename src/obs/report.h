// RunReport: one struct snapshotting registry + tracer at end of run, with
// the renderings the benches and examples print at exit.
#pragma once

#include <string>
#include <string_view>

#include "obs/obs.h"

namespace rootsim::obs {

struct RunReport {
  std::vector<MetricSample> metrics;  ///< deterministic order
  uint64_t trace_recorded = 0;        ///< total events seen by the tracer
  uint64_t trace_buffered = 0;        ///< events still in the ring
  uint64_t trace_dropped = 0;         ///< events evicted by the ring bound

  /// Null-safe: capturing from a null sink yields an empty report.
  static RunReport capture(const Obs& obs, bool include_volatile = false);
  static RunReport capture(const Recorder& recorder,
                           bool include_volatile = false);

  /// Sum of a counter across all label sets (0 when absent).
  uint64_t counter_total(std::string_view name) const;
  /// One exact counter series (0 when absent).
  uint64_t counter_value(std::string_view name, const LabelSet& labels) const;

  /// Multi-line rendering: every series, one per line, plus trace totals.
  std::string to_text() const;

  /// One-line summary for bench footers:
  ///   obs: probes=94 queries=4418 timeouts=0 tcp-retries=94 axfr-ok=94 ...
  std::string one_line() const;
};

}  // namespace rootsim::obs
