// Incident detection over the streaming SLO plane (obs/slo.h).
//
// IncidentTracker is a per-(root letter, family, metric) state machine fed
// the ordered sliding-window sweep from SloCollector::windows(). A breach
// must persist for `open_after` consecutive evaluated windows before an
// incident opens, and the stream must stay healthy for `close_after`
// consecutive evaluated windows before it closes — RSSAC047 thresholds are
// hard lines, and a stream sitting exactly on one would otherwise flap an
// incident per window. Starved windows (below SloThresholds::min_probes) are
// skipped entirely: silence is not evidence of health or of breach.
//
// Cause attribution is correlation, not causation inference, and says so:
// the tracker is handed CauseHints — time windows during which something
// known happened (a scripted outage, a zone-pipeline event like the ZONEMD
// algorithm roll, a FlightRecorder failure-cause burst, a sampled
// rss::outages window) — and each incident is attributed to the hint with
// the highest overlap_seconds x weight score among hints matching its
// letter/family/metric. Ties break lexicographically by label, no-overlap
// incidents stay "unknown", and every score is a pure function of incident
// and hint endpoints, so incidents.jsonl is byte-identical across worker
// counts and steal schedules whenever the windows and hints are.
#pragma once

#include <string>
#include <vector>

#include "obs/slo.h"

namespace rootsim::obs {

/// One known event window offered to attribution. Built by the measurement
/// layer (which can see rss::outages, zone-authority config, and the flight
/// recorder); obs only correlates intervals.
struct CauseHint {
  util::UnixTime start = 0;
  util::UnixTime end = 0;
  int root = -1;    ///< root letter index, -1 = any letter
  int family = -1;  ///< 0 = v4, 1 = v6, -1 = either
  int metric = -1;  ///< SloMetric value the hint explains, -1 = any
  std::string label;
  double weight = 1.0;  ///< prior strength; score = overlap seconds x weight
};

/// One detected threshold breach, from first breached window to healed.
struct Incident {
  uint32_t id = 0;  ///< 1-based, assigned after the deterministic sort
  uint8_t root = 0;
  bool v6 = false;
  SloMetric metric = SloMetric::Availability;
  util::UnixTime opened = 0;  ///< start of the first breached window
  util::UnixTime closed = 0;  ///< end of the healing window; 0 = still open
  util::UnixTime last_breach_end = 0;  ///< end of the last breached window
  size_t breach_windows = 0;  ///< breached windows inside the incident
  double worst_value = 0;     ///< most extreme observed value of the metric
  double threshold = 0;       ///< the threshold it was judged against
  std::string cause = "unknown";
  double cause_score = 0;

  bool open() const { return closed == 0; }
};

class IncidentTracker {
 public:
  explicit IncidentTracker(SloThresholds thresholds = {});

  /// Feed windows in SloCollector::windows() order (grouped per stream,
  /// time-ascending). May be called repeatedly with successive sweeps of
  /// *new* windows; re-feeding the same window double-counts.
  void observe(const std::vector<SloWindow>& windows);

  void add_hint(const CauseHint& hint);
  void add_hints(const std::vector<CauseHint>& hints);

  /// Forget all incidents, stream state, and hints.
  void reset();

  size_t open_count() const;

  /// All incidents (open and closed), attributed against the hints, sorted
  /// by (opened, root, family, metric) with ids assigned 1..N — a total,
  /// schedule-independent order.
  std::vector<Incident> incidents() const;

  /// One JSON object per incident (the incidents.jsonl export):
  ///   {"id":1,"letter":"b","family":"v4","metric":"availability",
  ///    "opened":"2023-11-27T00:00:00Z","closed":"2023-11-29T12:00:00Z",
  ///    "breach_windows":7,"worst":0.993056,"threshold":0.999600,
  ///    "cause":"b.root-renumbering","cause_score":172800.0}
  /// Non-empty `scenario` prepends one `{"scenario":"<name>"}` header line
  /// (same convention as SloCollector::windows_to_jsonl).
  static std::string incidents_to_jsonl(const std::vector<Incident>& incidents,
                                        const std::string& scenario = "");
  std::string to_jsonl() const;
  bool write_jsonl(const std::string& path) const;

  const SloThresholds& thresholds() const { return thresholds_; }

 private:
  struct StreamState {
    size_t breach_streak = 0;
    size_t heal_streak = 0;
    util::UnixTime streak_start = 0;  ///< start of the oldest breached window
    double streak_worst = 0;
    size_t streak_windows = 0;
    util::UnixTime streak_last_end = 0;
    int open_index = -1;  ///< index into incidents_, -1 = no open incident
  };

  static size_t state_index(uint8_t root, bool v6, SloMetric metric);
  double metric_value(const SloWindow& window, SloMetric metric) const;
  double metric_threshold(uint8_t root, SloMetric metric) const;
  static bool more_extreme(SloMetric metric, double candidate, double current);
  void attribute(Incident& incident) const;

  SloThresholds thresholds_;
  std::vector<StreamState> states_;
  std::vector<Incident> incidents_;
  std::vector<CauseHint> hints_;
};

}  // namespace rootsim::obs
