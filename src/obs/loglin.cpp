#include "obs/loglin.h"

#include <algorithm>
#include <bit>

#include "util/strings.h"

namespace rootsim::obs {

uint32_t LogLinearHistogram::bucket_index(uint64_t value) {
  if (value < kSubBuckets) return static_cast<uint32_t>(value);
  // 2^e <= value < 2^(e+1), e >= 4; the top 4 mantissa bits below the
  // leading one select the linear sub-bucket.
  const uint32_t e = 63 - static_cast<uint32_t>(std::countl_zero(value));
  const uint32_t sub =
      static_cast<uint32_t>((value >> (e - 4)) & (kSubBuckets - 1));
  return kSubBuckets + (e - 4) * kSubBuckets + sub;
}

uint64_t LogLinearHistogram::bucket_lower(uint32_t index) {
  if (index < kSubBuckets) return index;
  const uint32_t e = 4 + (index - kSubBuckets) / kSubBuckets;
  const uint32_t sub = (index - kSubBuckets) % kSubBuckets;
  return static_cast<uint64_t>(kSubBuckets + sub) << (e - 4);
}

uint64_t LogLinearHistogram::bucket_upper(uint32_t index) {
  if (index < kSubBuckets) return index + 1;
  const uint32_t e = 4 + (index - kSubBuckets) / kSubBuckets;
  const uint64_t width = uint64_t{1} << (e - 4);
  const uint64_t lower = bucket_lower(index);
  // The very last bucket's upper bound would overflow; saturate.
  return lower > ~uint64_t{0} - width ? ~uint64_t{0} : lower + width;
}

void LogLinearHistogram::observe(uint64_t value, uint64_t n) {
  if (n == 0) return;
  const uint32_t index = bucket_index(value);
  if (buckets_.size() <= index) buckets_.resize(index + 1, 0);
  buckets_[index] += n;
  count_ += n;
  sum_ += value * n;
  max_ = std::max(max_, value);
}

void LogLinearHistogram::merge_from(const LogLinearHistogram& other) {
  if (buckets_.size() < other.buckets_.size())
    buckets_.resize(other.buckets_.size(), 0);
  for (size_t i = 0; i < other.buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

double LogLinearHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank-based with within-bucket linear interpolation: rank r falls into
  // the bucket where the cumulative count first exceeds it, and the value
  // is placed proportionally inside that bucket's [lower, upper) range —
  // never snapped to the upper bound. Rank q*count (not q*(count-1)) keeps
  // the estimate invariant under doubling every bucket, i.e. merging k
  // identical collector shards cannot move a quantile.
  const double rank = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (uint32_t i = 0; i < buckets_.size(); ++i) {
    const uint64_t in_bucket = buckets_[i];
    if (in_bucket == 0) continue;
    if (rank < static_cast<double>(cumulative + in_bucket)) {
      const double lower = static_cast<double>(bucket_lower(i));
      const double upper = static_cast<double>(bucket_upper(i));
      const double offset =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * offset;
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max_);
}

std::vector<LogLinearHistogram::Bucket> LogLinearHistogram::nonzero_buckets()
    const {
  std::vector<Bucket> out;
  for (uint32_t i = 0; i < buckets_.size(); ++i)
    if (buckets_[i])
      out.push_back({bucket_lower(i), bucket_upper(i), buckets_[i]});
  return out;
}

std::string LogLinearHistogram::to_json() const {
  std::string out = util::format(
      "{\"count\":%llu,\"sum\":%llu,\"max\":%llu",
      static_cast<unsigned long long>(count_),
      static_cast<unsigned long long>(sum_),
      static_cast<unsigned long long>(max_));
  out += util::format(",\"p50\":%.1f,\"p90\":%.1f,\"p99\":%.1f,\"p999\":%.1f",
                      quantile(0.50), quantile(0.90), quantile(0.99),
                      quantile(0.999));
  out += ",\"buckets\":[";
  bool first = true;
  for (const Bucket& bucket : nonzero_buckets()) {
    if (!first) out += ",";
    first = false;
    out += util::format("[%llu,%llu,%llu]",
                        static_cast<unsigned long long>(bucket.lower),
                        static_cast<unsigned long long>(bucket.upper),
                        static_cast<unsigned long long>(bucket.count));
  }
  out += "]}";
  return out;
}

}  // namespace rootsim::obs
