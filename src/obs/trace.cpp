#include "obs/trace.h"

#include <cstdlib>

#include "obs/metrics.h"  // json_escape
#include "util/strings.h"

namespace rootsim::obs {

Tracer::Tracer(size_t capacity) : capacity_(capacity ? capacity : 1) {}

void Tracer::push(TraceEvent event) {
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    ++dropped_;
    if (drop_counter_) drop_counter_->inc();
  }
  ring_.push_back(std::move(event));
}

uint64_t Tracer::begin_span(std::string_view name, util::UnixTime sim_time,
                            std::vector<TraceAttr> attrs, uint64_t parent) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent event;
  event.id = next_id_++;
  event.span_id = parent;
  event.kind = TraceEvent::Kind::SpanBegin;
  event.name = std::string(name);
  event.sim_time = sim_time;
  event.attrs = std::move(attrs);
  uint64_t id = event.id;
  push(std::move(event));
  return id;
}

void Tracer::end_span(uint64_t span_id, util::UnixTime sim_time,
                      std::vector<TraceAttr> attrs) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent event;
  event.id = next_id_++;
  event.span_id = span_id;
  event.kind = TraceEvent::Kind::SpanEnd;
  event.sim_time = sim_time;
  event.attrs = std::move(attrs);
  push(std::move(event));
}

void Tracer::event(uint64_t span_id, std::string_view name,
                   util::UnixTime sim_time, std::vector<TraceAttr> attrs) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent ev;
  ev.id = next_id_++;
  ev.span_id = span_id;
  ev.kind = TraceEvent::Kind::Event;
  ev.name = std::string(name);
  ev.sim_time = sim_time;
  ev.attrs = std::move(attrs);
  push(std::move(ev));
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_ - 1;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  // next_id_ and dropped_ survive clear(): ids stay unique per tracer.
}

void Tracer::absorb(Tracer&& shard) {
  if (&shard == this) return;
  std::scoped_lock lock(mu_, shard.mu_);
  // Shard ids restart at 1; offsetting by the events already numbered here
  // reproduces exactly the ids a serial run would have assigned.
  const uint64_t base = next_id_ - 1;
  for (TraceEvent& event : shard.ring_) {
    event.id += base;
    if (event.span_id != 0) event.span_id += base;
    push(std::move(event));
  }
  next_id_ = base + shard.next_id_;
  dropped_ += shard.dropped_;
  shard.ring_.clear();
  shard.next_id_ = 1;
  shard.dropped_ = 0;
}

namespace {

const char* kind_to_string(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::SpanBegin: return "begin";
    case TraceEvent::Kind::SpanEnd: return "end";
    case TraceEvent::Kind::Event: return "event";
  }
  return "event";
}

}  // namespace

std::string Tracer::to_jsonl() const {
  std::string out;
  for (const TraceEvent& event : events()) {
    out += util::format("{\"id\":%llu,\"span\":%llu,\"kind\":\"%s\"",
                        static_cast<unsigned long long>(event.id),
                        static_cast<unsigned long long>(event.span_id),
                        kind_to_string(event.kind));
    if (!event.name.empty())
      out += ",\"name\":\"" + json_escape(event.name) + "\"";
    out += util::format(",\"t\":%lld", static_cast<long long>(event.sim_time));
    if (!event.attrs.empty()) {
      out += ",\"attrs\":{";
      for (size_t i = 0; i < event.attrs.size(); ++i) {
        if (i) out += ",";
        out += "\"" + json_escape(event.attrs[i].key) + "\":\"" +
               json_escape(event.attrs[i].value) + "\"";
      }
      out += "}";
    }
    out += "}\n";
  }
  return out;
}

namespace {

// Scanner for the exact JSONL shape to_jsonl emits.
struct Scanner {
  std::string_view text;
  size_t pos = 0;

  bool eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool eat_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) == lit) {
      pos += lit.size();
      return true;
    }
    return false;
  }
  bool read_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\' && pos < text.size()) {
        char esc = text[pos++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return false;
            out += static_cast<char>(
                std::strtol(std::string(text.substr(pos, 4)).c_str(), nullptr, 16));
            pos += 4;
            break;
          }
          default: out += esc;
        }
      } else {
        out += c;
      }
    }
    return eat('"');
  }
  bool read_int(long long& out) {
    size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    if (pos == start) return false;
    out = std::atoll(std::string(text.substr(start, pos - start)).c_str());
    return true;
  }
};

}  // namespace

bool parse_trace_line(std::string_view line, TraceEvent& out) {
  Scanner s{line};
  out = TraceEvent{};
  if (!s.eat('{')) return false;
  bool first = true;
  while (!s.eat('}')) {
    if (!first && !s.eat(',')) return false;
    first = false;
    std::string key;
    if (!s.read_string(key) || !s.eat(':')) return false;
    if (key == "id" || key == "span" || key == "t") {
      long long value = 0;
      if (!s.read_int(value)) return false;
      if (key == "id") out.id = static_cast<uint64_t>(value);
      else if (key == "span") out.span_id = static_cast<uint64_t>(value);
      else out.sim_time = value;
    } else if (key == "kind") {
      std::string kind;
      if (!s.read_string(kind)) return false;
      if (kind == "begin") out.kind = TraceEvent::Kind::SpanBegin;
      else if (kind == "end") out.kind = TraceEvent::Kind::SpanEnd;
      else if (kind == "event") out.kind = TraceEvent::Kind::Event;
      else return false;
    } else if (key == "name") {
      if (!s.read_string(out.name)) return false;
    } else if (key == "attrs") {
      if (!s.eat('{')) return false;
      bool first_attr = true;
      while (!s.eat('}')) {
        if (!first_attr && !s.eat(',')) return false;
        first_attr = false;
        TraceAttr attr;
        if (!s.read_string(attr.key) || !s.eat(':') ||
            !s.read_string(attr.value))
          return false;
        out.attrs.push_back(std::move(attr));
      }
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace rootsim::obs
