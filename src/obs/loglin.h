// Fixed-layout log-linear histograms for the RSSAC002 telemetry plane.
//
// RSSAC002v5 asks operators to publish size and volume *distributions* per
// instance per day; a useful implementation must (a) read back accurate
// quantiles (p50/p90/p99/p999 of response sizes span 512 B .. 64 KiB, so
// fixed linear buckets either blur the head or truncate the tail) and
// (b) merge across exec-pool shards without changing a single bit of the
// result — the byte-identity determinism suites diff the merged export
// against a serial run's.
//
// The layout is therefore *fixed at compile time* for every histogram:
// values 0..15 get exact unit buckets, and every power-of-two octave above
// is split into 16 linear sub-buckets (the HdrHistogram/DDSketch shape,
// ~3% relative error). Identical layout everywhere makes merge a plain
// element-wise add: associative, commutative, and bit-exact regardless of
// shard count or merge order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rootsim::obs {

class LogLinearHistogram {
 public:
  /// 16 exact unit buckets + 16 sub-buckets for each octave [2^e, 2^(e+1)),
  /// e in [4, 63].
  static constexpr uint32_t kSubBuckets = 16;
  static constexpr uint32_t kBucketCount = kSubBuckets + (64 - 4) * kSubBuckets;

  /// Bucket index of a value; the mapping is total over uint64_t.
  static uint32_t bucket_index(uint64_t value);
  /// Inclusive lower bound of a bucket.
  static uint64_t bucket_lower(uint32_t index);
  /// Exclusive upper bound of a bucket (lower + width; saturates at the top).
  static uint64_t bucket_upper(uint32_t index);

  void observe(uint64_t value, uint64_t n = 1);

  /// Element-wise add. Because every histogram shares one fixed layout this
  /// is exact and associative: merging shards in any grouping or order gives
  /// the same buckets a single-pass run would.
  void merge_from(const LogLinearHistogram& other);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }

  /// Interpolated quantile, q in [0,1]: locates the bucket holding rank
  /// q*count and interpolates linearly inside the bucket's value range
  /// rather than returning the bucket's upper bound. The q*count rank makes
  /// the estimate invariant under uniformly scaling every bucket count, so
  /// merging k identical shards reads out the same quantiles as one shard —
  /// the property the collector merge path relies on. Exact for values < 16
  /// (unit buckets); within one sub-bucket width (~3%) above. 0 when empty.
  double quantile(double q) const;

  /// Sparse occupied buckets, ascending: {lower, upper, count}.
  struct Bucket {
    uint64_t lower = 0;
    uint64_t upper = 0;
    uint64_t count = 0;
  };
  std::vector<Bucket> nonzero_buckets() const;

  /// {"count":N,"sum":S,"max":M,"p50":..,"p90":..,"p99":..,"p999":..,
  ///  "buckets":[[lo,hi,n],...]} — the shape rssac002.jsonl embeds.
  std::string to_json() const;

 private:
  std::vector<uint64_t> buckets_;  // lazily sized to the highest touched index
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

}  // namespace rootsim::obs
