#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace rootsim::obs {

std::string labels_to_string(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += labels[i].first;
    out += "=";
    out += labels[i].second;
  }
  out += "}";
  return out;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += util::format("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double v) {
  // First bucket whose upper bound admits v; the trailing slot is +inf.
  size_t idx =
      static_cast<size_t>(std::lower_bound(bounds_.begin(), bounds_.end(), v) -
                          bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

void Histogram::merge_from(const Histogram& other) {
  if (bounds_ != other.bounds_) return;
  for (size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  double add = other.sum();
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + add,
                                     std::memory_order_relaxed)) {
  }
}

double histogram_quantile(const std::vector<double>& bounds,
                          const std::vector<uint64_t>& buckets, double q) {
  uint64_t total = 0;
  for (uint64_t c : buckets) total += c;
  if (total == 0 || bounds.empty() || buckets.size() != bounds.size() + 1)
    return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  const double rank = q * static_cast<double>(total - 1);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (rank < static_cast<double>(cumulative + in_bucket)) {
      // Overflow bucket: no finite upper edge to interpolate toward.
      if (i == bounds.size()) return bounds.back();
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      const double offset = (rank - static_cast<double>(cumulative)) /
                            static_cast<double>(in_bucket);
      return lower + (upper - lower) * offset;
    }
    cumulative += in_bucket;
  }
  return bounds.back();
}

double sample_quantile(const MetricSample& sample, double q) {
  if (sample.kind != MetricSample::Kind::Histogram) return 0;
  return histogram_quantile(sample.bounds, sample.buckets, q);
}

double Histogram::quantile(double q) const {
  return histogram_quantile(bounds_, bucket_counts(), q);
}

const std::vector<double>& default_latency_bounds_ms() {
  static const std::vector<double> bounds = {1,  2,   5,   10,  20,  50,
                                             100, 150, 200, 300, 500};
  return bounds;
}

namespace {

LabelSet normalize(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name, LabelSet labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = series_[Key{std::string(name), normalize(std::move(labels))}];
  if (!entry.counter) {
    entry.kind = MetricSample::Kind::Counter;
    entry.counter = std::make_unique<Counter>();
  }
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, LabelSet labels,
                              bool volatile_metric) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = series_[Key{std::string(name), normalize(std::move(labels))}];
  if (!entry.gauge) {
    entry.kind = MetricSample::Kind::Gauge;
    entry.volatile_metric = volatile_metric;
    entry.gauge = std::make_unique<Gauge>();
  }
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, LabelSet labels,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = series_[Key{std::string(name), normalize(std::move(labels))}];
  if (!entry.histogram) {
    entry.kind = MetricSample::Kind::Histogram;
    if (bounds.empty()) bounds = default_latency_bounds_ms();
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *entry.histogram;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  // Collect stable handles under the source lock, then apply under our own
  // (taken inside the registration helpers) — the two locks are never held
  // together, so merging between live registries cannot deadlock. Handles
  // stay valid after the source lock drops (registry entries never move),
  // and shard registries are quiescent by the time they are merged.
  struct Pending {
    Key key;
    MetricSample::Kind kind = MetricSample::Kind::Counter;
    bool volatile_metric = false;
    uint64_t count = 0;
    double value = 0;
    const Histogram* histogram = nullptr;
  };
  std::vector<Pending> pending;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    pending.reserve(other.series_.size());
    for (const auto& [key, entry] : other.series_) {
      Pending p;
      p.key = key;
      p.kind = entry.kind;
      p.volatile_metric = entry.volatile_metric;
      switch (entry.kind) {
        case MetricSample::Kind::Counter:
          p.count = entry.counter->value();
          break;
        case MetricSample::Kind::Gauge:
          p.value = entry.gauge->value();
          break;
        case MetricSample::Kind::Histogram:
          p.histogram = entry.histogram.get();
          break;
      }
      pending.push_back(std::move(p));
    }
  }
  for (const Pending& p : pending) {
    switch (p.kind) {
      case MetricSample::Kind::Counter:
        // Register even at zero: a serial run creates the series the moment
        // a handle is resolved, and exports list zero-valued series.
        counter(p.key.name, p.key.labels).inc(p.count);
        break;
      case MetricSample::Kind::Gauge:
        gauge(p.key.name, p.key.labels, p.volatile_metric).set_max(p.value);
        break;
      case MetricSample::Kind::Histogram:
        histogram(p.key.name, p.key.labels, p.histogram->bounds())
            .merge_from(*p.histogram);
        break;
    }
  }
}

std::vector<MetricSample> MetricsRegistry::snapshot(bool include_volatile) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(series_.size());
  for (const auto& [key, entry] : series_) {
    if (entry.volatile_metric && !include_volatile) continue;
    MetricSample sample;
    sample.name = key.name;
    sample.labels = key.labels;
    sample.kind = entry.kind;
    sample.volatile_metric = entry.volatile_metric;
    switch (entry.kind) {
      case MetricSample::Kind::Counter:
        sample.count = entry.counter->value();
        break;
      case MetricSample::Kind::Gauge:
        sample.value = entry.gauge->value();
        break;
      case MetricSample::Kind::Histogram:
        sample.count = entry.histogram->count();
        sample.value = entry.histogram->sum();
        sample.bounds = entry.histogram->bounds();
        sample.buckets = entry.histogram->bucket_counts();
        break;
    }
    out.push_back(std::move(sample));
  }
  return out;
}

namespace {

std::string format_bound(double bound) {
  // Integral bounds print without a decimal point so "le10" stays readable.
  if (bound == std::floor(bound) && std::abs(bound) < 1e15)
    return util::format("%lld", static_cast<long long>(bound));
  return util::format("%g", bound);
}

}  // namespace

std::string sample_to_text(const MetricSample& sample) {
  std::string line = sample.name + labels_to_string(sample.labels);
  switch (sample.kind) {
    case MetricSample::Kind::Counter:
      line += util::format(" %llu", static_cast<unsigned long long>(sample.count));
      break;
    case MetricSample::Kind::Gauge:
      line += util::format(" %.3f", sample.value);
      break;
    case MetricSample::Kind::Histogram: {
      line += util::format(" count=%llu sum=%.3f",
                           static_cast<unsigned long long>(sample.count),
                           sample.value);
      for (size_t i = 0; i < sample.buckets.size(); ++i) {
        std::string bound = i < sample.bounds.size()
                                ? "le" + format_bound(sample.bounds[i])
                                : std::string("inf");
        line += util::format(" %s=%llu", bound.c_str(),
                             static_cast<unsigned long long>(sample.buckets[i]));
      }
      break;
    }
  }
  return line;
}

std::string sample_to_json(const MetricSample& sample) {
  std::string out = "{\"metric\":\"" + json_escape(sample.name) + "\"";
  if (!sample.labels.empty()) {
    out += ",\"labels\":{";
    for (size_t i = 0; i < sample.labels.size(); ++i) {
      if (i) out += ",";
      out += "\"" + json_escape(sample.labels[i].first) + "\":\"" +
             json_escape(sample.labels[i].second) + "\"";
    }
    out += "}";
  }
  switch (sample.kind) {
    case MetricSample::Kind::Counter:
      out += util::format(",\"type\":\"counter\",\"value\":%llu",
                          static_cast<unsigned long long>(sample.count));
      break;
    case MetricSample::Kind::Gauge:
      out += util::format(",\"type\":\"gauge\",\"value\":%.3f", sample.value);
      break;
    case MetricSample::Kind::Histogram: {
      out += util::format(",\"type\":\"histogram\",\"count\":%llu,\"sum\":%.3f",
                          static_cast<unsigned long long>(sample.count),
                          sample.value);
      out += ",\"bounds\":[";
      for (size_t i = 0; i < sample.bounds.size(); ++i) {
        if (i) out += ",";
        out += format_bound(sample.bounds[i]);
      }
      out += "],\"buckets\":[";
      for (size_t i = 0; i < sample.buckets.size(); ++i) {
        if (i) out += ",";
        out += util::format("%llu",
                            static_cast<unsigned long long>(sample.buckets[i]));
      }
      out += "]";
      break;
    }
  }
  out += "}";
  return out;
}

std::string MetricsRegistry::to_text(bool include_volatile) const {
  std::string out;
  for (const MetricSample& sample : snapshot(include_volatile)) {
    out += sample_to_text(sample);
    out += "\n";
  }
  return out;
}

std::string MetricsRegistry::to_jsonl(bool include_volatile) const {
  std::string out;
  for (const MetricSample& sample : snapshot(include_volatile)) {
    out += sample_to_json(sample);
    out += "\n";
  }
  return out;
}

uint64_t MetricsRegistry::counter_total(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [key, entry] : series_)
    if (key.name == name && entry.counter) total += entry.counter->value();
  return total;
}

uint64_t MetricsRegistry::counter_value(std::string_view name,
                                        const LabelSet& labels) const {
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(Key{std::string(name), sorted});
  if (it == series_.end() || !it->second.counter) return 0;
  return it->second.counter->value();
}

}  // namespace rootsim::obs
