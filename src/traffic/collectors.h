// Passive trace collection: the ISP-DNS-1 and IXP-DNS-1 perspectives.
//
// Both collectors watch flows between client prefixes and the root service
// subnets (/24 for IPv4, /48 for IPv6 — including both old and new b.root
// subnets), sampled and aggregated exactly as the paper describes: no
// payloads, client identities normalized to privacy prefixes, daily buckets.
//
// Output structures map 1:1 onto the figures:
//   * per-day traffic share per (root, family, old/new address)  -> Figs 7/9/12/13
//   * per-client daily flow counts to each b.root subnet          -> Fig 8
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "rss/catalog.h"
#include "traffic/clients.h"
#include "util/timeutil.h"

namespace rootsim::traffic {

/// Key for a traffic bucket: which service subnet was contacted.
struct SubnetKey {
  int root_index = 0;               // 0..12
  util::IpFamily family = util::IpFamily::V4;
  bool old_b_subnet = false;        // only meaningful for root_index == 1

  bool operator<(const SubnetKey& other) const {
    if (root_index != other.root_index) return root_index < other.root_index;
    if (family != other.family) return family < other.family;
    return old_b_subnet < other.old_b_subnet;
  }
  bool operator==(const SubnetKey&) const = default;
};

/// One day's aggregated traffic at a collector.
struct DailyTraffic {
  util::UnixTime day = 0;
  std::map<SubnetKey, double> flows;      // sampled flow counts
  std::map<SubnetKey, uint64_t> clients;  // distinct client prefixes seen

  double total_flows() const;
  /// Share of this day's traffic on a subnet (0 if no traffic at all).
  double share(const SubnetKey& key) const;
};

/// Per-client flow counts for one day (the Fig. 8 distribution).
struct ClientDayRecord {
  SubnetKey subnet;
  uint64_t client_index = 0;
  double flows = 0;
};

struct CollectorConfig {
  uint64_t seed = 42;
  /// Flow sampling rate (IXPs sample heavily; shares are unaffected).
  double sampling_rate = 0.01;
  /// Root popularity mix: share of total root traffic per root 0..12.
  /// ISP default: roughly uniform with mild skew. IXPs are dominated by
  /// k.root and d.root (paper Fig. 13).
  std::array<double, 13> root_weights{};
  /// Fraction of total traffic that is IPv6 at this collector.
  double ipv6_traffic_share = 0.18;
};

CollectorConfig isp_collector_config();
CollectorConfig ixp_collector_config_eu();
CollectorConfig ixp_collector_config_na();

/// Simulates one collector over [start, end) days.
class PassiveCollector {
 public:
  PassiveCollector(std::vector<Client> clients, CollectorConfig config,
                   util::UnixTime broot_change_time);

  /// Daily aggregates over a window.
  std::vector<DailyTraffic> collect(util::UnixTime start, util::UnixTime end) const;

  /// Aggregates with an arbitrary bucket width (Fig. 7's first panel is
  /// hourly around the change day). `DailyTraffic::day` then holds the
  /// bucket start.
  std::vector<DailyTraffic> collect_buckets(util::UnixTime start,
                                            util::UnixTime end,
                                            int64_t bucket_s) const;

  /// Per-client records for Fig. 8 (b.root + a few other roots, one window).
  std::vector<ClientDayRecord> collect_client_flows(util::UnixTime start,
                                                    util::UnixTime end,
                                                    int max_roots = 5) const;

  const std::vector<Client>& clients() const { return clients_; }

 private:
  /// Splits one client's flows (scaled to `day_fraction` of a day) between
  /// roots and, for b.root, between old and new subnets.
  void add_client_day(DailyTraffic& day, const Client& client,
                      size_t client_index, util::Rng& rng,
                      double day_fraction = 1.0) const;

  std::vector<Client> clients_;
  CollectorConfig config_;
  util::UnixTime change_time_;
};

}  // namespace rootsim::traffic
