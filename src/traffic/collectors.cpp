#include "traffic/collectors.h"

#include <cmath>

namespace rootsim::traffic {

double DailyTraffic::total_flows() const {
  double total = 0;
  for (const auto& [key, flows] : flows) total += flows;
  return total;
}

double DailyTraffic::share(const SubnetKey& key) const {
  double total = total_flows();
  if (total <= 0) return 0;
  auto it = flows.find(key);
  return it == flows.end() ? 0 : it->second / total;
}

CollectorConfig isp_collector_config() {
  CollectorConfig config;
  config.sampling_rate = 0.05;
  // ISP root mix (paper Fig. 12): b.root ~4.9%, others roughly balanced with
  // a/j/k slightly heavier.
  config.root_weights = {0.10, 0.049, 0.07, 0.08, 0.075, 0.085, 0.06,
                         0.065, 0.075, 0.095, 0.09, 0.08, 0.076};
  config.ipv6_traffic_share = 0.17;
  return config;
}

CollectorConfig ixp_collector_config_eu() {
  CollectorConfig config;
  config.sampling_rate = 0.002;
  // IXP traffic is dominated by k.root and d.root (paper Fig. 13).
  config.root_weights = {0.05, 0.03, 0.04, 0.22, 0.05, 0.06, 0.03,
                         0.04, 0.06, 0.07, 0.28, 0.04, 0.03};
  config.ipv6_traffic_share = 0.45;
  return config;
}

CollectorConfig ixp_collector_config_na() {
  CollectorConfig config = ixp_collector_config_eu();
  config.root_weights = {0.06, 0.03, 0.05, 0.20, 0.06, 0.07, 0.03,
                         0.04, 0.05, 0.08, 0.25, 0.05, 0.03};
  return config;
}

PassiveCollector::PassiveCollector(std::vector<Client> clients,
                                   CollectorConfig config,
                                   util::UnixTime broot_change_time)
    : clients_(std::move(clients)),
      config_(config),
      change_time_(broot_change_time) {}

void PassiveCollector::add_client_day(DailyTraffic& day, const Client& client,
                                      size_t client_index, util::Rng& rng,
                                      double day_fraction) const {
  // The client spreads its flows over the 13 roots by the collector's mix.
  double total_sampled = static_cast<double>(rng.poisson(
      client.flows_per_day * config_.sampling_rate * day_fraction));
  if (total_sampled <= 0) return;
  for (int root = 0; root < 13; ++root) {
    double root_flows =
        total_sampled * config_.root_weights[static_cast<size_t>(root)];
    if (root_flows <= 0) continue;
    if (root == 1) {
      // b.root: split between old and new subnets by the client's state.
      double new_share = client.new_address_share(day.day, change_time_);
      double old_flows = root_flows * (1.0 - new_share);
      double new_flows = root_flows * new_share;
      // Fully-switched priming clients still touch the old subnet once a day.
      if (client.primes && new_share >= 1.0 && day.day >= change_time_) {
        old_flows = std::min(1.0, root_flows * 0.02);
        new_flows = root_flows - old_flows;
      }
      // Before the zone change the new subnets were already operational and
      // drew a trickle (paper: 0.8% of b.root traffic on 2023-10-08).
      if (day.day < change_time_) {
        double trickle = client.family == util::IpFamily::V4 ? 0.009 : 0.004;
        new_flows = root_flows * trickle;
        old_flows = root_flows - new_flows;
      }
      SubnetKey old_key{1, client.family, true};
      SubnetKey new_key{1, client.family, false};
      if (old_flows > 0) {
        day.flows[old_key] += old_flows;
        day.clients[old_key] += 1;
      }
      if (new_flows > 0) {
        day.flows[new_key] += new_flows;
        day.clients[new_key] += 1;
      }
      continue;
    }
    SubnetKey key{root, client.family, false};
    day.flows[key] += root_flows;
    day.clients[key] += 1;
  }
  (void)client_index;
}

std::vector<DailyTraffic> PassiveCollector::collect(util::UnixTime start,
                                                    util::UnixTime end) const {
  return collect_buckets(util::day_start(start), end, util::kSecondsPerDay);
}

std::vector<DailyTraffic> PassiveCollector::collect_buckets(
    util::UnixTime start, util::UnixTime end, int64_t bucket_s) const {
  std::vector<DailyTraffic> buckets;
  double scale = static_cast<double>(bucket_s) /
                 static_cast<double>(util::kSecondsPerDay);
  for (util::UnixTime t = start; t < end; t += bucket_s) {
    DailyTraffic bucket;
    bucket.day = t;
    util::Rng rng =
        util::Rng(config_.seed).fork(util::format_datetime(t));
    for (size_t i = 0; i < clients_.size(); ++i) {
      const Client& client = clients_[i];
      bool family_included =
          client.family == util::IpFamily::V6
              ? rng.chance(config_.ipv6_traffic_share /
                           std::max(0.01, 0.35))  // normalize vs population mix
              : true;
      if (!family_included) continue;
      add_client_day(bucket, client, i, rng, scale);
    }
    buckets.push_back(std::move(bucket));
  }
  return buckets;
}

std::vector<ClientDayRecord> PassiveCollector::collect_client_flows(
    util::UnixTime start, util::UnixTime end, int max_roots) const {
  std::vector<ClientDayRecord> records;
  for (util::UnixTime t = util::day_start(start); t < end;
       t += util::kSecondsPerDay) {
    util::Rng rng = util::Rng(config_.seed ^ 0xFEED).fork(util::format_date(t));
    for (size_t i = 0; i < clients_.size(); ++i) {
      const Client& client = clients_[i];
      double daily = static_cast<double>(rng.poisson(client.flows_per_day));
      if (daily <= 0) continue;
      for (int root = 0; root < max_roots && root < 13; ++root) {
        double root_flows = daily * config_.root_weights[static_cast<size_t>(root)];
        if (root == 1) {
          double new_share = client.new_address_share(t, change_time_);
          double old_flows;
          if (client.primes && new_share >= 1.0 && t >= change_time_)
            old_flows = 1.0;  // the once-a-day priming touch
          else
            old_flows = root_flows * (1.0 - new_share);
          double new_flows = root_flows - old_flows;
          if (old_flows >= 1)
            records.push_back({{1, client.family, true}, i, old_flows});
          if (new_flows >= 1)
            records.push_back({{1, client.family, false}, i, new_flows});
          continue;
        }
        if (root_flows >= 1)
          records.push_back({{root, client.family, false}, i, root_flows});
      }
    }
  }
  return records;
}

}  // namespace rootsim::traffic
