#include "traffic/querymix.h"

#include "util/strings.h"

namespace rootsim::traffic {

std::string to_string(QueryClass cls) {
  switch (cls) {
    case QueryClass::ValidTld: return "valid-tld";
    case QueryClass::NonexistentTld: return "nonexistent-tld";
    case QueryClass::RepeatedQuery: return "repeated";
    case QueryClass::RootNs: return "priming";
    case QueryClass::Junk: return "junk";
  }
  return "?";
}

namespace {

std::string random_label(util::Rng& rng, size_t min_len, size_t max_len) {
  static const char* alphabet = "abcdefghijklmnopqrstuvwxyz0123456789-";
  size_t len = min_len + rng.uniform(max_len - min_len + 1);
  std::string label;
  for (size_t i = 0; i < len; ++i) label += alphabet[rng.uniform(36)];
  if (label.front() == '-') label.front() = 'x';
  if (label.back() == '-') label.back() = 'x';
  return label;
}

dns::RRType random_qtype(util::Rng& rng) {
  static const dns::RRType kTypes[] = {dns::RRType::A, dns::RRType::AAAA,
                                       dns::RRType::NS, dns::RRType::MX,
                                       dns::RRType::TXT};
  return kTypes[rng.uniform(5)];
}

}  // namespace

std::vector<WorkloadQuery> generate_query_workload(
    const std::vector<std::string>& tlds, const QueryMixConfig& config) {
  util::Rng rng(config.seed);
  std::vector<WorkloadQuery> workload;
  workload.reserve(config.queries);

  // A pool of "broken client" queries that get endlessly repeated.
  std::vector<WorkloadQuery> repeat_pool;
  for (int i = 0; i < 20; ++i) {
    WorkloadQuery q;
    q.cls = QueryClass::RepeatedQuery;
    // Leaked internal names: "wpad.corp.", "router.home." style.
    static const char* kLeaks[] = {"wpad.corp.", "router.home.", "ntp.lan.",
                                   "printer.local.", "db01.internal."};
    q.qname = *dns::Name::parse(kLeaks[i % 5]);
    q.qtype = random_qtype(rng);
    repeat_pool.push_back(q);
  }

  for (size_t i = 0; i < config.queries; ++i) {
    double roll = rng.uniform01();
    WorkloadQuery q;
    if (roll < config.nonexistent_fraction) {
      q.cls = QueryClass::NonexistentTld;
      // Typos and local-suffix leaks: random labels under a random fake TLD.
      std::string name = random_label(rng, 4, 12) + "." +
                         random_label(rng, 5, 10) + ".";
      auto parsed = dns::Name::parse(name);
      q.qname = parsed ? *parsed : dns::Name();
      q.qtype = random_qtype(rng);
    } else if (roll < config.nonexistent_fraction + config.repeated_fraction) {
      q = repeat_pool[rng.uniform(repeat_pool.size())];
    } else if (roll < config.nonexistent_fraction + config.repeated_fraction +
                          config.priming_fraction) {
      q.cls = QueryClass::RootNs;
      q.qname = dns::Name();
      q.qtype = dns::RRType::NS;
    } else if (roll < config.nonexistent_fraction + config.repeated_fraction +
                          config.priming_fraction + config.junk_fraction) {
      q.cls = QueryClass::Junk;
      // Single nonsense labels ("localhost", raw IPs as qnames, etc.).
      auto parsed = dns::Name::parse(random_label(rng, 1, 20) + ".");
      q.qname = parsed ? *parsed : dns::Name();
      q.qtype = static_cast<dns::RRType>(1 + rng.uniform(60));
    } else {
      q.cls = QueryClass::ValidTld;
      const std::string& tld = tlds[rng.uniform(tlds.size())];
      q.qname = *dns::Name::parse(random_label(rng, 3, 10) + "." + tld + ".");
      q.qtype = random_qtype(rng);
    }
    workload.push_back(std::move(q));
  }
  return workload;
}

QueryMixReport replay_workload(const rss::RootServerInstance& instance,
                               const std::vector<WorkloadQuery>& workload,
                               util::UnixTime when) {
  QueryMixReport report;
  for (const auto& item : workload) {
    dns::Message query = dns::make_query(
        static_cast<uint16_t>(report.total & 0xFFFF), item.qname, item.qtype);
    dns::Message response = instance.handle_udp_query(query, when);
    ++report.total;
    size_t cls = static_cast<size_t>(item.cls);
    ++report.per_class_count[cls];
    if (response.rcode == dns::Rcode::NxDomain) {
      ++report.nxdomain;
      ++report.per_class_nxdomain[cls];
    } else if (response.rcode == dns::Rcode::NoError) {
      ++report.noerror;
      if (response.answers.empty() && !response.authority.empty())
        ++report.referrals;
    }
  }
  return report;
}

}  // namespace rootsim::traffic
