// A DITL-style query workload: what one root instance receives in a day.
//
// The paper's related-work section (§3, "Studies of Clients") summarizes two
// decades of findings from root-side traces: roots receive large volumes of
// malformed and repeated queries (Brownlee et al., Castro et al.), and more
// than half of all queries fail because the TLD does not exist (Gao et al.)
// — which is what motivates serving the root locally (Allman; RFC 7706/8806)
// and, transitively, ZONEMD. This model generates such a workload and runs
// it against a simulated instance, so the claim "most root queries are
// avoidable" is measured rather than assumed.
#pragma once

#include <string>
#include <vector>

#include "rss/server.h"
#include "util/rng.h"

namespace rootsim::traffic {

/// Classes of client queries observed at roots.
enum class QueryClass {
  ValidTld,        ///< delegation lookups for existing TLDs
  NonexistentTld,  ///< typos, chromoids, leaked local names -> NXDOMAIN
  RepeatedQuery,   ///< the same query re-sent by a broken client
  RootNs,          ///< priming queries
  Junk,            ///< malformed/garbage qnames
};

std::string to_string(QueryClass cls);

struct QueryMixConfig {
  uint64_t seed = 42;
  size_t queries = 50000;
  /// Mix fractions (Gao et al.: >50% nonexistent TLD; Castro et al.: heavy
  /// repetition on top).
  double nonexistent_fraction = 0.55;
  double repeated_fraction = 0.18;
  double priming_fraction = 0.02;
  double junk_fraction = 0.05;
  // Remainder: valid TLD lookups.
};

/// One generated query with its ground-truth class.
struct WorkloadQuery {
  QueryClass cls = QueryClass::ValidTld;
  dns::Name qname;
  dns::RRType qtype = dns::RRType::A;
};

/// Generates the day-at-the-root workload against a zone's real TLD set.
std::vector<WorkloadQuery> generate_query_workload(
    const std::vector<std::string>& tlds, const QueryMixConfig& config);

/// Results of replaying the workload against an instance.
struct QueryMixReport {
  size_t total = 0;
  size_t nxdomain = 0;
  size_t noerror = 0;
  size_t referrals = 0;  // NOERROR with empty answer + NS authority
  std::array<size_t, 5> per_class_count{};
  std::array<size_t, 5> per_class_nxdomain{};

  double nxdomain_fraction() const {
    return total ? static_cast<double>(nxdomain) / total : 0;
  }
  /// Queries a local root copy could have answered without touching the RSS
  /// (everything except... nothing: the root zone is fully replicable).
  double avoidable_fraction() const { return total ? 1.0 : 0; }
};

QueryMixReport replay_workload(const rss::RootServerInstance& instance,
                               const std::vector<WorkloadQuery>& workload,
                               util::UnixTime when);

}  // namespace rootsim::traffic
