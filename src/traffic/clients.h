// Resolver client populations for the passive ISP/IXP perspective.
//
// Each client models one recursive-resolver installation (aggregated, as the
// paper does, to its /24 or /48 prefix). Behavioural knobs reproduce the
// causal mechanisms of §6:
//   * priming (RFC 8109): a primed resolver re-reads the root NS set at
//     startup and immediately uses the new b.root address; the paper
//     conjectures priming support correlates with newer (IPv6-capable)
//     stacks. Priming clients touch the *old* address once per day at most.
//   * reluctance: un-primed resolvers keep using the address baked into
//     their hints file — 13 years after j.root's change the old address
//     still drew traffic (Wessels et al.).
//   * eagerness differs per region and family: ISP clients shifted 87.1%
//     (v4) / 96.3% (v6); at IXPs 60.8% (EU) vs 16.5% (NA) of v6 traffic
//     moved.
#pragma once

#include <cstdint>
#include <vector>

#include "util/geo.h"
#include "util/ip.h"
#include "util/rng.h"
#include "util/timeutil.h"

namespace rootsim::traffic {

/// One resolver client (identified by its privacy prefix).
struct Client {
  util::Prefix prefix;
  util::IpFamily family = util::IpFamily::V4;
  util::Region region = util::Region::Europe;
  /// Mean DNS flows this client generates to the root system per day
  /// (heavy-tailed across clients).
  double flows_per_day = 10;
  /// Whether this resolver primes (re-discovers root addresses at startup).
  bool primes = false;
  /// If it does not prime: does it ever adopt the new address, and when?
  bool eventually_adopts = true;
  /// Days after the zone change at which the client switches (if it does).
  double adoption_delay_days = 1.0;

  /// Share of this client's b.root traffic on the NEW address at time `t`
  /// (0 before the change; ramps per behaviour after).
  double new_address_share(util::UnixTime t, util::UnixTime change_time) const;

  /// Expected number of touches on the OLD address per day at time `t`
  /// (primed clients keep touching it ~once a day — the Fig. 8 signal).
  double old_address_flows_per_day(util::UnixTime t,
                                   util::UnixTime change_time) const;
};

struct PopulationConfig {
  uint64_t seed = 42;
  size_t clients = 20000;
  /// Fraction of clients on IPv6 (dual-stack resolvers counted per family).
  double ipv6_share = 0.35;
  /// Priming probability per family — the paper's conjecture: newer
  /// (IPv6-capable) software primes more often.
  double priming_prob_v4 = 0.45;
  double priming_prob_v6 = 0.80;
  /// Probability that a non-priming client never adopts the new address.
  double never_adopts_prob_v4 = 0.129;  // -> 87.1% total v4 shift at the ISP
  double never_adopts_prob_v6 = 0.037;  // -> 96.3% total v6 shift
  /// Regional weights over clients (Europe-heavy for the ISP dataset).
  std::array<double, util::kRegionCount> region_weights = {0.02, 0.08, 0.55,
                                                           0.25, 0.05, 0.05};
  /// Flow volume distribution (log-normal over clients): most clients send a
  /// handful of flows/day, heavy hitters send hundreds of thousands.
  double flows_mu = 2.5;
  double flows_sigma = 2.0;
};

/// Generates a deterministic client population.
std::vector<Client> generate_population(const PopulationConfig& config);

/// Population presets per dataset. The ISP preset reproduces the §6 in-family
/// shift ratios (87.1% v4 / 96.3% v6); the IXP presets reproduce the regional
/// IPv6 eagerness split (Europe 60.8% shifted vs North America 16.5%).
PopulationConfig isp_population_config();
PopulationConfig ixp_population_config_eu();
PopulationConfig ixp_population_config_na();

}  // namespace rootsim::traffic
