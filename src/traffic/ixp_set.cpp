#include "traffic/ixp_set.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace rootsim::traffic {

std::vector<IxpSite> build_ixp_set(util::UnixTime broot_change,
                                   const IxpSetConfig& config) {
  util::Rng rng(config.seed);
  std::vector<IxpSite> ixps;
  auto build_region = [&](util::Region region, int count, const char* prefix) {
    for (int i = 0; i < count; ++i) {
      IxpSite ixp;
      ixp.name = util::format("%s-IXP-%02d", prefix, i + 1);
      ixp.region = region;
      // Zipf-ish sizes: the largest IXP dwarfs the smallest.
      ixp.peer_count = static_cast<size_t>(600.0 / (i + 1)) + 40;

      PopulationConfig population = region == util::Region::Europe
                                        ? ixp_population_config_eu()
                                        : ixp_population_config_na();
      population.seed = rng.next();
      population.clients = ixp.peer_count * config.clients_per_peer;
      // Per-IXP eagerness jitter: CPE fleets behind different IXPs differ.
      double jitter = std::exp(rng.normal(0, config.eagerness_jitter));
      population.priming_prob_v6 =
          std::min(0.95, population.priming_prob_v6 * jitter);
      population.never_adopts_prob_v6 =
          std::min(0.95, population.never_adopts_prob_v6 / jitter);

      CollectorConfig collector = region == util::Region::Europe
                                      ? ixp_collector_config_eu()
                                      : ixp_collector_config_na();
      collector.seed = rng.next();
      ixp.collector = std::make_unique<PassiveCollector>(
          generate_population(population), collector, broot_change);
      ixps.push_back(std::move(ixp));
    }
  };
  build_region(util::Region::Europe, config.europe_ixps, "EU");
  build_region(util::Region::NorthAmerica, config.north_america_ixps, "NA");
  return ixps;
}

std::vector<DailyTraffic> aggregate_ixps(const std::vector<IxpSite>& ixps,
                                         util::Region region,
                                         util::UnixTime start,
                                         util::UnixTime end) {
  std::vector<DailyTraffic> aggregate;
  for (const IxpSite& ixp : ixps) {
    if (ixp.region != region) continue;
    auto days = ixp.collector->collect(start, end);
    if (aggregate.empty()) {
      aggregate = std::move(days);
      continue;
    }
    for (size_t i = 0; i < days.size() && i < aggregate.size(); ++i) {
      for (const auto& [key, flows] : days[i].flows)
        aggregate[i].flows[key] += flows;
      for (const auto& [key, clients] : days[i].clients)
        aggregate[i].clients[key] += clients;
    }
  }
  return aggregate;
}

}  // namespace rootsim::traffic
