// The IXP-DNS-1 vantage set: 14 IXPs in Europe and North America (paper
// §4.1). Each IXP gets its own client population (per-IXP eagerness jitter
// around the regional mean) and collector, so analyses can report both the
// per-IXP spread and the regional aggregates of Figs. 9/13.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "traffic/collectors.h"

namespace rootsim::traffic {

struct IxpSite {
  std::string name;           // "EU-IXP-01" style (real names are proprietary)
  util::Region region = util::Region::Europe;
  size_t peer_count = 100;    // relative size (affects client count)
  std::unique_ptr<PassiveCollector> collector;
};

struct IxpSetConfig {
  uint64_t seed = 42;
  int europe_ixps = 9;
  int north_america_ixps = 5;  // 14 total, as in the paper
  size_t clients_per_peer = 40;
  /// Log-sigma of per-IXP eagerness jitter around the regional behaviour.
  double eagerness_jitter = 0.12;
};

/// Builds the 14-IXP vantage set with per-IXP populations.
std::vector<IxpSite> build_ixp_set(util::UnixTime broot_change,
                                   const IxpSetConfig& config = {});

/// Aggregates daily traffic across a subset of IXPs (one region or all).
std::vector<DailyTraffic> aggregate_ixps(const std::vector<IxpSite>& ixps,
                                         util::Region region,
                                         util::UnixTime start,
                                         util::UnixTime end);

}  // namespace rootsim::traffic
