#include "traffic/clients.h"

#include <algorithm>
#include <cmath>

namespace rootsim::traffic {

double Client::new_address_share(util::UnixTime t,
                                 util::UnixTime change_time) const {
  if (t < change_time) return 0.0;
  double days_since = static_cast<double>(t - change_time) /
                      static_cast<double>(util::kSecondsPerDay);
  if (primes) {
    // Primed resolvers pick the new address up at the next priming cycle —
    // effectively within a day.
    return days_since >= 0.5 ? 1.0 : days_since * 2.0;
  }
  if (!eventually_adopts) return 0.0;
  return days_since >= adoption_delay_days ? 1.0 : 0.0;
}

double Client::old_address_flows_per_day(util::UnixTime t,
                                         util::UnixTime change_time) const {
  double new_share = new_address_share(t, change_time);
  double old_flows = flows_per_day * (1.0 - new_share);
  if (t >= change_time && primes && new_share >= 1.0) {
    // Fully-switched priming clients still touch the old address about once
    // per day when re-priming — the single-contact signal of Fig. 8.
    return 1.0;
  }
  return old_flows;
}

PopulationConfig isp_population_config() {
  return PopulationConfig{};  // defaults are calibrated to the ISP dataset
}

PopulationConfig ixp_population_config_eu() {
  PopulationConfig config;
  config.seed = 421;
  config.ipv6_share = 0.5;  // the IXP analysis focusses on IPv6 traffic
  // Europe: 60.8% of IPv6 traffic shifts. CPE/resolver fleets behind IXP
  // peers are older than ISP resolvers: less priming, more reluctance.
  config.priming_prob_v6 = 0.35;
  config.never_adopts_prob_v6 = 0.392;
  config.priming_prob_v4 = 0.30;
  config.never_adopts_prob_v4 = 0.45;
  config.region_weights = {0.0, 0.0, 1.0, 0.0, 0.0, 0.0};
  return config;
}

PopulationConfig ixp_population_config_na() {
  PopulationConfig config = ixp_population_config_eu();
  config.seed = 422;
  // North America: only 16.5% of IPv6 traffic shifts to the new subnet.
  config.priming_prob_v6 = 0.08;
  config.never_adopts_prob_v6 = 0.835;
  config.region_weights = {0.0, 0.0, 0.0, 1.0, 0.0, 0.0};
  return config;
}

std::vector<Client> generate_population(const PopulationConfig& config) {
  util::Rng rng(config.seed);
  util::Rng addr_rng = rng.fork("clients/addresses");
  util::Rng behave_rng = rng.fork("clients/behaviour");

  std::vector<Client> clients;
  clients.reserve(config.clients);
  for (size_t i = 0; i < config.clients; ++i) {
    Client c;
    bool v6 = behave_rng.chance(config.ipv6_share);
    c.family = v6 ? util::IpFamily::V6 : util::IpFamily::V4;
    c.region = util::all_regions()[behave_rng.weighted_index(config.region_weights)];
    if (v6) {
      std::array<uint16_t, 8> hextets{};
      hextets[0] = 0x2400 + static_cast<uint16_t>(addr_rng.uniform(0x1C00));
      hextets[1] = static_cast<uint16_t>(addr_rng.uniform(0x10000));
      hextets[2] = static_cast<uint16_t>(addr_rng.uniform(0x10000));
      c.prefix = util::Prefix(util::IpAddress::v6(hextets), 48);
    } else {
      uint32_t host = static_cast<uint32_t>(addr_rng.uniform(0xE0000000u));
      c.prefix = util::Prefix(util::IpAddress::v4(host), 24);
    }
    c.flows_per_day =
        std::max(1.0, behave_rng.lognormal(config.flows_mu, config.flows_sigma));
    double priming_prob = v6 ? config.priming_prob_v6 : config.priming_prob_v4;
    c.primes = behave_rng.chance(priming_prob);
    if (!c.primes) {
      double never_prob =
          v6 ? config.never_adopts_prob_v6 : config.never_adopts_prob_v4;
      // Rescale: the never-adopt share is defined over ALL clients of a
      // family, but only non-primers can be reluctant.
      double conditional =
          std::min(1.0, never_prob / std::max(1e-9, 1.0 - priming_prob));
      c.eventually_adopts = !behave_rng.chance(conditional);
      c.adoption_delay_days = 0.5 + behave_rng.exponential(1.0 / 6.0);
    }
    clients.push_back(std::move(c));
  }
  return clients;
}

}  // namespace rootsim::traffic
